//! The simulated applicative multiprocessor.
//!
//! A [`Machine`] instantiates one shared driver loop
//! ([`splice_harness::DriverLoop`]) per processor of a topology and runs
//! them over [`SimSubstrate`] — the discrete-event implementation of the
//! [`Substrate`] trait: messages move through the deterministic event queue
//! with topology-dependent latency, execution time is charged per
//! evaluation wave, faults come from a [`FaultPlan`], and the reliable
//! super-root runs on the driver side. Everything is deterministic for a
//! given configuration and seed.
//!
//! All protocol plumbing (action dispatch, super-root fallbacks, failure
//! notices, report assembly) lives in `splice-harness` and is shared with
//! the threaded runtime; this file contributes only the event queue, the
//! latency/cost/fault models, and the driver-side event loop.

use crate::cost::CostModel;
use crate::report::RunReport;
use splice_applicative::{Program, Workload};
use splice_core::config::Config as RecoveryConfig;
use splice_core::engine::{Action, Timer};
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::place::Placer;
use splice_core::sink::ActionSink;
use splice_core::stamp::LevelStamp;
use splice_gradient::Policy;
use splice_harness::{
    corrupt_value, death_notice_targets, dispatch_iter, BatchingSubstrate, DriverLoop,
    EngineSnapshot, EngineTotals, ShardMap, ShardRouter, Substrate, SuperRootDriver,
    TracingSubstrate,
};
use splice_simnet::detect::DetectorConfig;
use splice_simnet::fault::{FaultKind, FaultOutcome, FaultPlan, FaultState};
use splice_simnet::link::LinkModel;
use splice_simnet::queue::EventQueue;
use splice_simnet::time::VirtualTime;
use splice_simnet::topology::Topology;
use splice_simnet::trace::{TraceEvent, TraceKind, TraceMode, TraceSummary, Tracer};
use std::sync::Arc;

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Interconnect topology (defines the processor count).
    pub topology: Topology,
    /// Link latency model.
    pub link: LinkModel,
    /// Failure detection timing.
    pub detector: DetectorConfig,
    /// Placement policy.
    pub policy: Policy,
    /// Recovery configuration shared by all engines.
    pub recovery: RecoveryConfig,
    /// Execution cost model.
    pub cost: CostModel,
    /// Extra delivery latency per message crossing a shard boundary (the
    /// inter-shard router's fixed cost; inert on flat topologies).
    pub router_latency: u64,
    /// Flush window of the batched-delivery bus: worker messages buffered
    /// within one pump are delivered together, `batch_window` ticks late
    /// (0 disables batching entirely — bit-identical to no bus). Swept by
    /// experiment E15.
    pub batch_window: u64,
    /// Seed for stochastic placers and jitter.
    pub seed: u64,
    /// OS threads (reactor pumps) the parallel-reactor backend spreads
    /// the engines over; every other backend ignores it. Clamped to
    /// `[1, n_procs]` at machine build time.
    pub threads: u32,
    /// Hard event budget (guards against divergence).
    pub max_events: u64,
    /// Hard virtual-time budget.
    pub max_time: VirtualTime,
    /// Canonical-trace mode: off, ring of N, full recording, or
    /// checksum-only (see [`TraceMode`]).
    pub trace: TraceMode,
}

impl MachineConfig {
    /// A sensible default machine: `n` processors, complete graph, splice
    /// recovery, gradient placement.
    pub fn new(n: u32) -> MachineConfig {
        MachineConfig {
            topology: Topology::Complete { n },
            link: LinkModel::default(),
            detector: DetectorConfig::default(),
            policy: Policy::Gradient,
            recovery: RecoveryConfig::default(),
            cost: CostModel::default(),
            router_latency: 0,
            batch_window: 0,
            seed: 1,
            threads: 1,
            max_events: 200_000_000,
            max_time: VirtualTime(u64::MAX / 4),
            trace: TraceMode::Off,
        }
    }

    /// A sharded machine: `shards` shards of `per_shard` fully-connected
    /// processors each, joined by an inter-shard router that adds
    /// `router_latency` ticks to every boundary crossing and carries
    /// payload at a third of the intra-shard bandwidth
    /// (`link.inter_unit = 2 × per_unit`). Any workload and fault plan
    /// runs unchanged; cross-shard traffic is counted separately in the
    /// report.
    pub fn sharded(shards: u32, per_shard: u32, router_latency: u64) -> MachineConfig {
        let mut cfg = MachineConfig::new(shards * per_shard);
        cfg.topology = Topology::Sharded {
            shards,
            inner: Box::new(Topology::Complete { n: per_shard }),
        };
        cfg.router_latency = router_latency;
        cfg.link.inter_unit = 2 * cfg.link.per_unit;
        // The spawn/ack round trip can cross the router up to twice per
        // forwarding hop; an ack timeout tuned for a flat interconnect
        // sits right on top of that round trip and degenerates into a
        // reissue storm (every cross-shard spawn reissued just before its
        // ack lands, duplicating subtrees faster than they retire). Keep
        // the timeout clear of the router.
        cfg.recovery.ack_timeout += 4 * router_latency;
        cfg
    }

    /// A flat machine with the batched-delivery bus enabled: worker
    /// messages coalesce per pump and flush `window` ticks late. The ack
    /// timeout widens by four windows for the same reason the sharded
    /// constructor widens it by four router latencies: a flat-tuned
    /// timeout sitting on top of the spawn/ack round trip (now paying the
    /// window up to twice per hop) degenerates into a reissue storm.
    pub fn batched(n: u32, window: u64) -> MachineConfig {
        let mut cfg = MachineConfig::new(n);
        cfg.batch_window = window;
        cfg.recovery.ack_timeout += 4 * window;
        cfg
    }

    /// The recovery config the engines actually run: [`Self::recovery`],
    /// except that a machine whose failure detector never broadcasts
    /// (`detector.broadcast == false`) force-enables acked-child probing.
    /// Bounces and ack timeouts only cover unacked spawns; without either
    /// notices or probes, a parent would wait forever on an acked child
    /// whose host died silently.
    pub fn engine_recovery(&self) -> RecoveryConfig {
        let mut rec = self.recovery.clone();
        rec.probe_acked |= !self.detector.broadcast;
        rec
    }
}

enum Ev {
    Deliver {
        from: ProcId,
        to: ProcId,
        msg: Msg,
    },
    Bounce {
        sender: ProcId,
        dead: ProcId,
        msg: Msg,
    },
    Timer {
        proc: ProcId,
        timer: Timer,
    },
    Step {
        proc: ProcId,
    },
    Fault {
        victim: ProcId,
        kind: FaultKind,
    },
    /// Fault-plan crash of super-root replica `rank` ([`RootQuorum`]
    /// liveness; distinct from processor faults — the victim domain is
    /// replica ranks, not processor ids).
    ///
    /// [`RootQuorum`]: splice_core::superroot::RootQuorum
    RootFault {
        rank: u32,
    },
    Notice {
        to: ProcId,
        dead: ProcId,
    },
    /// Periodic state-size sampling for the global-checkpoint baseline.
    Sample,
    /// Deferred wave effects: a wave's sends/timers materialize when the
    /// wave completes, and die with the processor if it crashed mid-wave
    /// (fail-silent: "it will no longer transmit any valid messages").
    Effects {
        proc: ProcId,
        actions: Vec<Action>,
    },
}

/// The discrete-event [`Substrate`]: virtual time, the deterministic event
/// queue, the latency/bounce/cost models, and per-processor liveness.
struct SimSubstrate {
    cfg: MachineConfig,
    queue: EventQueue<Ev>,
    now: VirtualTime,
    msg_seq: u64,
    delivered: u64,
    dropped_to_dead: u64,
    bounces: u64,
    /// Per-processor liveness and corruption — the shared fault state
    /// machine (`splice_simnet::FaultState`), so the crash/corrupt
    /// transition rules are literally the same code on every backend.
    faults: FaultState,
    /// Pending queue entries that are *not* `Ev::Sample`. The sampler
    /// reschedules itself unconditionally, so the queue alone never
    /// drains; this counter is what quiescence detection watches.
    pending_real: u64,
    /// Pending deliveries addressed to the super-root. The driver link is
    /// reliable, so even with every processor dead these must land before
    /// the run may be declared stalled — one of them can be the result.
    pending_sr_deliver: u64,
    busy_until: Vec<VirtualTime>,
    step_pending: Vec<bool>,
    /// (time, live tasks across live processors) samples.
    state_samples: Vec<(u64, u64)>,
    sample_period: u64,
    /// Recycled `Ev::Effects` action buffers (one round-trips per wave).
    effects_pool: Vec<Vec<Action>>,
}

/// The full DES substrate stack: the inter-shard router over the batching
/// bus over the tracing decorator over the DES core. The tracer sits
/// innermost so events carry the core clock at the instant traffic reaches
/// it; with [`TraceMode::Off`] it is a transparent pass-through.
type SimStack = ShardRouter<BatchingSubstrate<TracingSubstrate<SimSubstrate>>>;

impl SimSubstrate {
    fn live(&self, p: ProcId) -> bool {
        self.faults.is_live(p.0)
    }

    /// Schedules `ev`, keeping the non-Sample and super-root-delivery
    /// pending counts in sync. Every push goes through here, and every pop
    /// through [`SimSubstrate::on_pop`] — the two classifications must
    /// stay exact mirrors.
    fn sched(&mut self, at: VirtualTime, ev: Ev) {
        if !matches!(ev, Ev::Sample) {
            self.pending_real += 1;
        }
        if matches!(ev, Ev::Deliver { to, .. } if to.is_super_root()) {
            self.pending_sr_deliver += 1;
        }
        self.queue.push(at, ev);
    }

    /// Un-counts a popped event — the exact mirror of [`SimSubstrate::sched`].
    fn on_pop(&mut self, ev: &Ev) {
        if !matches!(ev, Ev::Sample) {
            self.pending_real -= 1;
        }
        if matches!(ev, Ev::Deliver { to, .. } if to.is_super_root()) {
            self.pending_sr_deliver -= 1;
        }
    }
}

impl Substrate for SimSubstrate {
    fn n_procs(&self) -> u32 {
        self.faults.n()
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.live(p)
    }

    fn now_units(&self) -> u64 {
        self.now.ticks()
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        self.send_delayed(from, to, msg, 0);
    }

    fn send_delayed(&mut self, from: ProcId, to: ProcId, mut msg: Msg, extra: u64) {
        self.msg_seq += 1;
        let at = self.now;
        // A corrupting processor emits detectably wrong replica results
        // (§5.3 experiment) — the same send-side rule as the threaded
        // substrate, so replicated-voting runs agree across backends.
        if !from.is_super_root() && self.faults.is_corrupting(from.0) {
            if let Msg::Result(rp) = &mut msg {
                if rp.replica.is_some() {
                    rp.value = corrupt_value(&rp.value);
                }
            }
        }
        if to.is_super_root() {
            // The driver link is reliable with base latency.
            let latency = self.cfg.link.base + extra;
            self.sched(at + latency, Ev::Deliver { from, to, msg });
            return;
        }
        // Dead destination known to the transport: the sender's best-effort
        // delivery fails and it learns the destination is unreachable (the
        // failed attempt still pays any router surcharge).
        if !self.live(to) && !from.is_super_root() {
            let bounce_at = self.cfg.detector.bounce_time(at) + extra;
            self.sched(
                bounce_at,
                Ev::Bounce {
                    sender: from,
                    dead: to,
                    msg,
                },
            );
            return;
        }
        let (src, dst) = (if from.is_super_root() { to.0 } else { from.0 }, to.0);
        let latency = self
            .cfg
            .link
            .latency(&self.cfg.topology, src, dst, msg.size(), self.msg_seq)
            + extra;
        self.sched(at + latency, Ev::Deliver { from, to, msg });
    }

    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64) {
        self.sched(self.now + delay, Ev::Timer { proc: owner, timer });
    }

    fn report_death(&mut self, dead: ProcId) {
        // Detector: staggered notices to live peers and the super-root
        // driver, in the canonical recipient order.
        let targets = death_notice_targets(self.n_procs(), |p| self.live(p), dead);
        for (peer_index, to) in targets.into_iter().enumerate() {
            if let Some(at) = self.cfg.detector.notice_time(self.now, peer_index as u32) {
                self.sched(at, Ev::Notice { to, dead });
            }
        }
    }

    fn complete_wave(&mut self, proc: ProcId, sink: &mut ActionSink, work: u64) {
        // Charge the cost model; the effects only escape the processor if
        // it is still alive when the wave completes. The sink drains into
        // a recycled buffer so deferring a wave allocates nothing in the
        // steady state.
        let done = self.now + self.cfg.cost.wave_cost(work);
        self.busy_until[proc.0 as usize] = done;
        let mut actions = self.effects_pool.pop().unwrap_or_default();
        actions.extend(sink.drain());
        self.sched(done, Ev::Effects { proc, actions });
    }
}

/// The simulated machine.
pub struct Machine {
    program: Arc<Program>,
    nodes: Vec<DriverLoop>,
    superroot: SuperRootDriver,
    /// The substrate stack: the inter-shard router over the batching bus
    /// over the tracing decorator over the DES core. On flat topologies
    /// the router is a single-shard pass-through, with `batch_window == 0`
    /// the bus is transparent, and with `TraceMode::Off` the tracer is
    /// inert — so every machine is built the same way; sharded configs
    /// charge `cfg.router_latency` per boundary crossing, batched configs
    /// coalesce per-pump traffic, and traced configs record the canonical
    /// event stream.
    sub: SimStack,
    /// When enabled, records `(time, stamp, proc)` at every task creation.
    log_spawns: bool,
    spawn_log: Vec<(u64, LevelStamp, ProcId)>,
}

impl Machine {
    /// Builds a machine for `workload` with per-processor placers from the
    /// configured policy.
    pub fn new(cfg: MachineConfig, workload: &Workload) -> Machine {
        let topo = cfg.topology.clone();
        let policy = cfg.policy;
        let seed = cfg.seed;
        // One shared roster for every per-engine placer: per-placer roster
        // copies would make an n-engine build O(n^2) memory.
        let all: std::sync::Arc<[splice_core::ids::ProcId]> =
            (0..topo.len()).map(splice_core::ids::ProcId).collect();
        Machine::with_placer_factory(cfg, workload, |p| policy.build_shared(p, &topo, seed, &all))
    }

    /// Builds a machine with custom placers (used by scripted scenarios such
    /// as Figure 1).
    pub fn with_placer_factory(
        cfg: MachineConfig,
        workload: &Workload,
        mut factory: impl FnMut(ProcId) -> Box<dyn Placer>,
    ) -> Machine {
        let n = cfg.topology.len();
        assert!(n >= 1, "need at least one processor");
        let program = Arc::new(workload.program.clone());
        let recovery = cfg.engine_recovery();
        let mut nodes = Vec::with_capacity(n as usize);
        for i in 0..n {
            let id = ProcId(i);
            nodes.push(DriverLoop::new(
                id,
                program.clone(),
                recovery.clone(),
                factory(id),
            ));
        }
        let superroot = SuperRootDriver::new(workload, &cfg.recovery);
        let tracer = Tracer::new(cfg.trace);
        let map = ShardMap::new(cfg.topology.shard_count(), cfg.topology.per_shard());
        let router_latency = cfg.router_latency;
        let batch_window = cfg.batch_window;
        let sub = SimSubstrate {
            queue: EventQueue::new(),
            now: VirtualTime::ZERO,
            msg_seq: 0,
            delivered: 0,
            dropped_to_dead: 0,
            bounces: 0,
            faults: FaultState::new(n),
            pending_real: 0,
            pending_sr_deliver: 0,
            busy_until: vec![VirtualTime::ZERO; n as usize],
            step_pending: vec![false; n as usize],
            state_samples: Vec::new(),
            sample_period: 2_000,
            effects_pool: Vec::new(),
            cfg,
        };
        let sub = ShardRouter::new(
            BatchingSubstrate::new(TracingSubstrate::new(sub, tracer), batch_window),
            map,
            router_latency,
        );
        Machine {
            program,
            nodes,
            superroot,
            sub,
            log_spawns: false,
            spawn_log: Vec::new(),
        }
    }

    /// Enables the placement log (used by scripted scenarios to find crash
    /// instants).
    pub fn enable_spawn_log(&mut self) {
        self.log_spawns = true;
        for node in &mut self.nodes {
            node.engine_mut().enable_created_log();
        }
    }

    /// The placement log collected so far.
    pub fn spawn_log(&self) -> &[(u64, LevelStamp, ProcId)] {
        &self.spawn_log
    }

    /// The program under execution.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.sub.now
    }

    /// Fixed-size fingerprint of the canonical trace so far.
    pub fn trace_summary(&self) -> TraceSummary {
        self.sub.inner().inner().tracer().summary()
    }

    fn live_tasks(&self) -> u64 {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| self.sub.faults.is_live(*i as u32))
            .map(|(_, n)| n.engine().task_count() as u64)
            .sum()
    }

    /// Runs the workload under `faults` to completion (or until it
    /// quiesces without a result, or a budget trips) and reports.
    pub fn run(self, faults: &FaultPlan) -> RunReport {
        self.run_traced(faults).0
    }

    /// Like [`Machine::run`], additionally returning the events the
    /// configured trace mode retained (empty for off/checksum modes).
    pub fn run_traced(mut self, faults: &FaultPlan) -> (RunReport, Vec<TraceEvent>) {
        // Schedule faults.
        for f in faults.sorted() {
            self.sub.sched(
                f.at,
                Ev::Fault {
                    victim: ProcId(f.victim),
                    kind: f.kind,
                },
            );
        }
        for f in faults.sorted_root() {
            self.sub.sched(f.at, Ev::RootFault { rank: f.rank });
        }
        // Start engines (arms load beacons).
        for node in &mut self.nodes {
            node.start(&mut self.sub);
        }
        // Launch the program.
        self.superroot.launch(&mut self.sub);
        self.sub.inner_mut().flush();
        let first_sample = self.sub.now + self.sub.sample_period;
        self.sub.sched(first_sample, Ev::Sample);

        let mut events: u64 = 0;
        let mut finish: Option<VirtualTime> = None;
        let mut budget_tripped = false;
        while let Some((at, ev)) = self.sub.queue.pop() {
            debug_assert!(at >= self.sub.now, "time must not run backwards");
            self.sub.now = at;
            self.sub.on_pop(&ev);
            events += 1;
            if events > self.sub.cfg.max_events || self.sub.now > self.sub.cfg.max_time {
                budget_tripped = true;
                break;
            }
            self.handle(ev);
            // One pump, one batch: everything the event's handlers sent
            // through the bus goes out now, `batch_window` ticks late.
            self.sub.inner_mut().flush();
            if self.superroot.result().is_some() {
                finish = Some(self.sub.now);
                break;
            }
            // With every processor dead and nothing still in flight on the
            // reliable driver link, the result can never arrive; only the
            // sampler and the super-root's hopeless reissue cycle would
            // keep the queue busy (historically all the way to
            // `max_events`). Quiesce as stalled instead. Pending super-root
            // deliveries must drain first: one of them can be the result a
            // worker emitted just before the massacre.
            if self.sub.faults.live_count() == 0 && self.sub.pending_sr_deliver == 0 {
                break;
            }
            // With every root replica dead the super-root role itself is
            // gone: inputs are discarded, so no delivery can ever set the
            // result. Quiesce as stalled immediately.
            if !self.superroot.has_live_replica() {
                break;
            }
        }

        // Any exit without a result that is not a budget trip is
        // quiescence: nothing left in the system could have produced the
        // answer.
        let stalled = finish.is_none() && !budget_tripped;
        let trace_events = self.sub.inner_mut().inner_mut().tracer_mut().take_events();
        (
            self.build_report(events, finish, stalled, faults),
            trace_events,
        )
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Deliver { from, to, msg } => self.deliver(from, to, msg),
            Ev::Bounce { sender, dead, msg } => {
                self.sub.bounces += 1;
                if self.sub.live(sender) {
                    self.nodes[sender.0 as usize].on_send_failed(dead, msg, &mut self.sub);
                    self.poke(sender);
                }
            }
            Ev::Timer { proc, timer } => {
                if proc.is_super_root() {
                    self.superroot.on_timer(timer, &mut self.sub);
                } else if self.sub.live(proc) {
                    self.nodes[proc.0 as usize].on_timer(timer, &mut self.sub);
                    self.poke(proc);
                }
            }
            Ev::Step { proc } => self.step(proc),
            Ev::Fault { victim, kind } => self.fault(victim, kind),
            Ev::RootFault { rank } => self.root_fault(rank),
            Ev::Notice { to, dead } => {
                if to.is_super_root() {
                    self.superroot.on_failure(dead, &mut self.sub);
                } else if self.sub.live(to) {
                    self.nodes[to.0 as usize]
                        .on_message(Msg::FailureNotice { dead }, &mut self.sub);
                    self.poke(to);
                }
            }
            Ev::Sample => {
                let sample = (self.sub.now.ticks(), self.live_tasks());
                self.sub.state_samples.push(sample);
                // Stop the self-rescheduling cycle once nothing but
                // sampling remains and no live engine holds runnable work:
                // the run is quiesced and the queue must be allowed to
                // drain (otherwise a stalled run grinds through
                // `max_events` pops of pure sampling).
                let ready_somewhere = self
                    .nodes
                    .iter()
                    .enumerate()
                    .any(|(i, n)| self.sub.faults.is_live(i as u32) && n.has_ready());
                if self.sub.pending_real > 0 || ready_somewhere {
                    let next = self.sub.now + self.sub.sample_period;
                    self.sub.sched(next, Ev::Sample);
                }
            }
            Ev::Effects { proc, mut actions } => {
                if self.sub.live(proc) {
                    dispatch_iter(&mut self.sub, proc, actions.drain(..));
                }
                actions.clear();
                self.sub.effects_pool.push(actions);
            }
        }
    }

    fn deliver(&mut self, _from: ProcId, to: ProcId, msg: Msg) {
        if to.is_super_root() {
            self.sub.delivered += 1;
            self.superroot.on_message(msg, &mut self.sub);
            return;
        }
        if !self.sub.live(to) {
            // Fail-silent destination: the message vanishes. (Senders that
            // knew the destination was dead got a Bounce instead.)
            self.sub.dropped_to_dead += 1;
            return;
        }
        self.sub.delivered += 1;
        let now = self.sub.now;
        // Delivery is narrated by the driver loop's canonical-trace hook
        // inside `on_message`.
        self.nodes[to.0 as usize].on_message(msg, &mut self.sub);
        if self.log_spawns {
            let created = self.nodes[to.0 as usize].engine_mut().drain_created();
            for stamp in created {
                self.spawn_log.push((now.ticks(), stamp, to));
            }
        }
        self.poke(to);
    }

    fn step(&mut self, proc: ProcId) {
        self.sub.step_pending[proc.0 as usize] = false;
        if !self.sub.live(proc) {
            return;
        }
        // `complete_wave` on the substrate charges the cost model and
        // defers the wave's effects to its completion instant.
        if self.nodes[proc.0 as usize].run_ready_wave(&mut self.sub) {
            self.poke(proc);
        }
    }

    /// Ensures a Step event is pending when the processor has runnable work.
    fn poke(&mut self, proc: ProcId) {
        let i = proc.0 as usize;
        if self.sub.faults.is_live(proc.0) && !self.sub.step_pending[i] && self.nodes[i].has_ready()
        {
            self.sub.step_pending[i] = true;
            let at = self.sub.busy_until[i].max(self.sub.now);
            self.sub.sched(at, Ev::Step { proc });
        }
    }

    fn fault(&mut self, victim: ProcId, kind: FaultKind) {
        // The transition rules (incl. the corrupt-after-crash no-op: a
        // crashed processor is fail-silent and cannot start emitting
        // corrupted messages) live in the shared `FaultState`, so every
        // backend applies plans identically; this handler only times them
        // and drives the detector.
        let outcome = self.sub.faults.apply(victim.0, kind);
        if self.sub.trace_enabled() {
            self.sub.trace(TraceKind::Fault {
                victim: victim.0,
                kind: match kind {
                    FaultKind::Crash => 0,
                    FaultKind::Corrupt => 1,
                },
                applied: outcome != FaultOutcome::Ignored,
            });
        }
        if outcome == FaultOutcome::Crashed {
            self.sub.report_death(victim);
        }
    }

    /// Crashes super-root replica `rank`. A deposed acting primary's
    /// successor takes over from the replicated checkpoint inside
    /// `crash_replica` (reissuing the root wave if no result has landed);
    /// this handler only times the event and narrates it.
    fn root_fault(&mut self, rank: u32) {
        let applied = self.superroot.replica_live(rank);
        if self.sub.trace_enabled() {
            self.sub.trace(TraceKind::Fault {
                victim: rank,
                kind: 2,
                applied,
            });
        }
        let failed_over = self.superroot.crash_replica(rank, &mut self.sub);
        if failed_over && self.sub.trace_enabled() {
            let new_primary = self.superroot.primary().unwrap_or(u32::MAX);
            self.sub
                .trace(TraceKind::RootFailover { rank: new_primary });
        }
    }

    fn build_report(
        &mut self,
        events: u64,
        finish: Option<VirtualTime>,
        stalled: bool,
        faults: &FaultPlan,
    ) -> RunReport {
        let totals =
            EngineTotals::collect(self.nodes.iter().map(|n| EngineSnapshot::of(n.engine())));
        let shard_stats = self.sub.stats();
        let (shard_msgs_intra, shard_msgs_inter) = (shard_stats.intra_msgs, shard_stats.inter_msgs);
        let batch_stats = *self.sub.inner().batch_stats();
        RunReport {
            result: self.superroot.result().cloned(),
            completed: finish.is_some(),
            stalled,
            finish: finish.unwrap_or(self.sub.now),
            events,
            delivered: self.sub.delivered,
            dropped_to_dead: self.sub.dropped_to_dead,
            bounces: self.sub.bounces,
            stats: totals.stats,
            per_proc: totals.per_proc,
            ckpt_peak_entries: totals.ckpt_peak_entries,
            ckpt_peak_bytes: totals.ckpt_peak_bytes,
            ckpt_stored: totals.ckpt_stored,
            root_reissues: self.superroot.reissues(),
            root_failovers: self.superroot.failovers(),
            root_replicas: self.superroot.replicas(),
            state_samples: std::mem::take(&mut self.sub.state_samples),
            spawn_log: std::mem::take(&mut self.spawn_log),
            n_procs: self.nodes.len() as u32,
            shards: self.sub.map().shards,
            shard_msgs_intra,
            shard_msgs_inter,
            batch_envelopes: batch_stats.envelopes,
            batch_msgs: batch_stats.messages,
            faults: faults.events.len() + faults.root_events.len(),
            threads: 1,
            msgs_cross_reactor: 0,
            steals: 0,
            frames_sent: 0,
            frames_resent: 0,
            reconnects: 0,
            decode_errors: 0,
            trace: self.sub.inner().inner().tracer().summary(),
            policy: self
                .nodes
                .first()
                .map(|n| n.engine().policy_kind())
                .unwrap_or_default(),
        }
    }
}

/// Convenience: run `workload` on `n` processors with `cfg`-defaults and a
/// fault plan.
pub fn run_workload(cfg: MachineConfig, workload: &Workload, faults: &FaultPlan) -> RunReport {
    Machine::new(cfg, workload).run(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::config::RecoveryMode;

    fn cfg(n: u32) -> MachineConfig {
        let mut c = MachineConfig::new(n);
        c.recovery.load_beacon_period = 200;
        c
    }

    #[test]
    fn fault_free_run_matches_reference() {
        let w = Workload::fib(10);
        let report = run_workload(cfg(4), &w, &FaultPlan::none());
        assert!(report.completed);
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        assert!(report.stats.tasks_completed >= 177);
        assert_eq!(report.stats.eval_errors, 0);
    }

    #[test]
    fn fault_free_suite_on_various_machines() {
        for (i, w) in Workload::suite_small().into_iter().enumerate() {
            let mut c = cfg(2 + (i as u32 % 6));
            c.topology = match i % 3 {
                0 => Topology::Complete {
                    n: 2 + (i as u32 % 6),
                },
                1 => Topology::Ring {
                    n: 2 + (i as u32 % 6),
                },
                _ => Topology::Mesh {
                    w: 2,
                    h: (2 + (i as u32 % 6)).div_ceil(2),
                    wrap: false,
                },
            };
            // Keep processor count consistent with topology.
            let report = run_workload(c, &w, &FaultPlan::none());
            assert!(report.completed, "{}", w.name);
            assert_eq!(
                report.result,
                Some(w.reference_result().unwrap()),
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn single_crash_splice_recovers() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        let faults = FaultPlan::crash_at(2, VirtualTime(3_000));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed, "run stalled");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn single_crash_rollback_recovers() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Rollback;
        let faults = FaultPlan::crash_at(1, VirtualTime(3_000));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed, "run stalled");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Workload::quicksort(24, 7);
        let faults = FaultPlan::crash_at(3, VirtualTime(2_500));
        let a = run_workload(cfg(5), &w, &faults);
        let b = run_workload(cfg(5), &w, &faults);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn all_crash_plan_quiesces_far_below_the_event_budget() {
        // Kill every processor mid-run: the result can never arrive. The
        // seed behaviour was to grind through all 200M `max_events` pops
        // (the sampler reschedules itself unconditionally and the
        // super-root reissues into the void forever); quiescence detection
        // must report `stalled` after a vanishing fraction of that.
        let w = Workload::fib(12);
        let c = cfg(4);
        let max_events = c.max_events;
        let mut faults = FaultPlan::none();
        for p in 0..4 {
            faults = faults.and(p, VirtualTime(2_000), FaultKind::Crash);
        }
        let report = run_workload(c, &w, &faults);
        assert!(!report.completed);
        assert!(report.stalled, "all-dead run must be reported as stalled");
        assert_eq!(report.result, None);
        assert!(
            report.events < max_events / 100,
            "stall detected after {} events (budget {})",
            report.events,
            max_events
        );
    }

    #[test]
    fn all_crash_after_result_sent_still_completes() {
        // The root result leaves its worker `link.base` ticks before the
        // super-root receives it. Killing every processor inside that
        // window must NOT be declared a stall: the driver link is reliable
        // and the in-flight delivery still lands.
        let w = Workload::fib(10);
        let ff = run_workload(cfg(4), &w, &FaultPlan::none());
        let crash = VirtualTime(ff.finish.ticks() - 1);
        let mut faults = FaultPlan::none();
        for p in 0..4 {
            faults = faults.and(p, crash, FaultKind::Crash);
        }
        let report = run_workload(cfg(4), &w, &faults);
        assert!(report.completed, "in-flight result was discarded");
        assert!(!report.stalled);
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn completed_and_budget_tripped_runs_are_not_stalled() {
        let w = Workload::fib(10);
        let ok = run_workload(cfg(4), &w, &FaultPlan::none());
        assert!(ok.completed && !ok.stalled);
        let mut tight = cfg(4);
        tight.max_events = 50;
        let cut = run_workload(tight, &w, &FaultPlan::none());
        assert!(!cut.completed);
        assert!(!cut.stalled, "a budget trip is not quiescence");
    }

    #[test]
    fn corrupt_after_crash_is_inert() {
        // Corrupting an already-crashed (fail-silent) processor must change
        // nothing: the victim can emit no messages, valid or corrupt.
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        let crash_only = FaultPlan::crash_at(2, VirtualTime(3_000));
        let with_corrupt = crash_only
            .clone()
            .and(2, VirtualTime(4_000), FaultKind::Corrupt);
        let a = run_workload(c.clone(), &w, &crash_only);
        let b = run_workload(c, &w, &with_corrupt);
        assert!(a.completed && b.completed);
        assert_eq!(a.result, b.result);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.delivered, b.delivered);
        // The only difference is the popped (no-op) fault event itself.
        assert_eq!(b.events, a.events + 1);
    }

    #[test]
    fn sharded_machine_runs_the_small_suite() {
        // Acceptance: ≥ 4 shards × 4 processors completes every small-suite
        // workload with the reference result, and traffic actually crosses
        // the router.
        for w in Workload::suite_small() {
            let mut c = MachineConfig::sharded(4, 4, 200);
            c.recovery.load_beacon_period = 200;
            let report = run_workload(c, &w, &FaultPlan::none());
            assert!(report.completed, "{}", w.name);
            assert_eq!(
                report.result,
                Some(w.reference_result().unwrap()),
                "{}",
                w.name
            );
            assert_eq!(report.shards, 4);
            assert!(
                report.shard_msgs_inter > 0,
                "{}: no traffic crossed the router",
                w.name
            );
        }
    }

    #[test]
    fn whole_shard_crash_is_survived_via_cross_shard_splice() {
        let w = Workload::fib(13);
        let mut c = MachineConfig::sharded(4, 4, 200);
        c.recovery.mode = RecoveryMode::Splice;
        c.recovery.load_beacon_period = 200;
        // Shard 1 (processors 4..8) dies wholesale mid-run.
        let faults = FaultPlan::crash_shard(1, 4, VirtualTime(3_000));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed, "sharded run stalled");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        assert!(report.shard_msgs_inter > 0);
    }

    #[test]
    fn early_shard_crash_survives_the_slow_ack_fast_notice_race() {
        // Regression: with a 400-tick router, placement acks from the dying
        // shard are still in flight when the 200-tick failure notices land.
        // The notice-time recovery pass finds no checkpoint keyed to the
        // dead processors (unacked placements have no destination yet), and
        // the late corpse acks used to be recorded as live placements —
        // wedging every waiting parent into a permanent quiescent stall.
        // Engine::on_ack now reissues on an ack from a known-dead host.
        let w = Workload::fib(13);
        for crash in [2_000u64, 3_000] {
            let mut c = MachineConfig::sharded(4, 4, 400);
            c.policy = Policy::RoundRobin;
            let faults = FaultPlan::crash_shard(3, 4, VirtualTime(crash));
            let report = run_workload(c, &w, &faults);
            assert!(report.completed, "crash@{crash} stalled");
            assert!(!report.stalled);
            assert_eq!(
                report.result,
                Some(w.reference_result().unwrap()),
                "crash@{crash}"
            );
        }
    }

    #[test]
    fn router_latency_slows_cross_shard_runs() {
        let w = Workload::fib(12);
        let mut near = MachineConfig::sharded(4, 2, 0);
        near.recovery.load_beacon_period = 200;
        let mut far = near.clone();
        far.router_latency = 2_000;
        let a = run_workload(near, &w, &FaultPlan::none());
        let b = run_workload(far, &w, &FaultPlan::none());
        assert!(a.completed && b.completed);
        assert_eq!(a.result, b.result);
        assert!(
            b.finish > a.finish,
            "router latency must be visible: {} vs {}",
            a.finish,
            b.finish
        );
    }

    #[test]
    fn batched_delivery_completes_and_counts_envelopes() {
        let w = Workload::fib(12);
        let mut c = MachineConfig::batched(4, 200);
        c.recovery.load_beacon_period = 200;
        let r = run_workload(c, &w, &FaultPlan::none());
        assert!(r.completed, "batched run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.batch_msgs > 0, "no traffic went through the bus");
        assert!(
            r.batch_envelopes <= r.batch_msgs,
            "envelopes cannot exceed messages"
        );
    }

    #[test]
    fn batch_window_delays_completion() {
        let w = Workload::fib(11);
        let mut near = MachineConfig::batched(4, 0);
        near.recovery.load_beacon_period = 200;
        let mut far = near.clone();
        far.batch_window = 1_000;
        let a = run_workload(near, &w, &FaultPlan::none());
        let b = run_workload(far, &w, &FaultPlan::none());
        assert!(a.completed && b.completed);
        assert_eq!(a.result, b.result);
        assert_eq!(a.batch_msgs, 0, "window 0 is a transparent pass-through");
        assert!(
            b.finish > a.finish,
            "the flush window must be visible: {} vs {}",
            a.finish,
            b.finish
        );
    }

    #[test]
    fn batched_machine_survives_a_crash() {
        let w = Workload::fib(12);
        let mut c = MachineConfig::batched(4, 300);
        c.recovery.mode = RecoveryMode::Splice;
        c.recovery.load_beacon_period = 200;
        let faults = FaultPlan::crash_at(2, VirtualTime(3_000));
        let r = run_workload(c, &w, &faults);
        assert!(r.completed, "batched crash run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn batching_composes_with_sharding() {
        let w = Workload::fib(12);
        let mut c = MachineConfig::sharded(2, 2, 200);
        c.batch_window = 150;
        c.recovery.ack_timeout += 4 * c.batch_window;
        c.recovery.load_beacon_period = 200;
        let r = run_workload(c, &w, &FaultPlan::none());
        assert!(r.completed);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.shard_msgs_inter > 0);
        assert!(r.batch_msgs > 0);
    }

    #[test]
    fn root_processor_crash_is_survived_via_super_root() {
        let w = Workload::fib(10);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        // Processor 0 hosts the root (launch rotor starts there).
        let faults = FaultPlan::crash_at(0, VirtualTime(1_500));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed);
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        assert!(report.root_reissues >= 1, "super-root reissued the program");
    }
}
