//! The simulated applicative multiprocessor.
//!
//! A [`Machine`] instantiates one shared driver loop
//! ([`splice_harness::DriverLoop`]) per processor of a topology and runs
//! them over [`SimSubstrate`] — the discrete-event implementation of the
//! [`Substrate`] trait: messages move through the deterministic event queue
//! with topology-dependent latency, execution time is charged per
//! evaluation wave, faults come from a [`FaultPlan`], and the reliable
//! super-root runs on the driver side. Everything is deterministic for a
//! given configuration and seed.
//!
//! All protocol plumbing (action dispatch, super-root fallbacks, failure
//! notices, report assembly) lives in `splice-harness` and is shared with
//! the threaded runtime; this file contributes only the event queue, the
//! latency/cost/fault models, and the driver-side event loop.

use crate::cost::CostModel;
use crate::report::RunReport;
use splice_applicative::{Program, Workload};
use splice_core::config::Config as RecoveryConfig;
use splice_core::engine::{Action, Timer};
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::place::Placer;
use splice_core::stamp::LevelStamp;
use splice_gradient::Policy;
use splice_harness::{
    corrupt_value, death_notice_targets, dispatch, DriverLoop, EngineSnapshot, EngineTotals,
    Substrate, SuperRootDriver,
};
use splice_simnet::detect::DetectorConfig;
use splice_simnet::fault::{FaultKind, FaultPlan};
use splice_simnet::link::LinkModel;
use splice_simnet::queue::EventQueue;
use splice_simnet::time::VirtualTime;
use splice_simnet::topology::Topology;
use splice_simnet::trace::Trace;
use std::sync::Arc;

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Interconnect topology (defines the processor count).
    pub topology: Topology,
    /// Link latency model.
    pub link: LinkModel,
    /// Failure detection timing.
    pub detector: DetectorConfig,
    /// Placement policy.
    pub policy: Policy,
    /// Recovery configuration shared by all engines.
    pub recovery: RecoveryConfig,
    /// Execution cost model.
    pub cost: CostModel,
    /// Seed for stochastic placers and jitter.
    pub seed: u64,
    /// Hard event budget (guards against divergence).
    pub max_events: u64,
    /// Hard virtual-time budget.
    pub max_time: VirtualTime,
    /// Trace capacity (0 disables tracing).
    pub trace: usize,
}

impl MachineConfig {
    /// A sensible default machine: `n` processors, complete graph, splice
    /// recovery, gradient placement.
    pub fn new(n: u32) -> MachineConfig {
        MachineConfig {
            topology: Topology::Complete { n },
            link: LinkModel::default(),
            detector: DetectorConfig::default(),
            policy: Policy::Gradient,
            recovery: RecoveryConfig::default(),
            cost: CostModel::default(),
            seed: 1,
            max_events: 200_000_000,
            max_time: VirtualTime(u64::MAX / 4),
            trace: 0,
        }
    }
}

enum Ev {
    Deliver {
        from: ProcId,
        to: ProcId,
        msg: Msg,
    },
    Bounce {
        sender: ProcId,
        dead: ProcId,
        msg: Msg,
    },
    Timer {
        proc: ProcId,
        timer: Timer,
    },
    Step {
        proc: ProcId,
    },
    Fault {
        victim: ProcId,
        kind: FaultKind,
    },
    Notice {
        to: ProcId,
        dead: ProcId,
    },
    /// Periodic state-size sampling for the global-checkpoint baseline.
    Sample,
    /// Deferred wave effects: a wave's sends/timers materialize when the
    /// wave completes, and die with the processor if it crashed mid-wave
    /// (fail-silent: "it will no longer transmit any valid messages").
    Effects {
        proc: ProcId,
        actions: Vec<Action>,
    },
}

/// The discrete-event [`Substrate`]: virtual time, the deterministic event
/// queue, the latency/bounce/cost models, and per-processor liveness.
struct SimSubstrate {
    cfg: MachineConfig,
    queue: EventQueue<Ev>,
    now: VirtualTime,
    msg_seq: u64,
    delivered: u64,
    dropped_to_dead: u64,
    bounces: u64,
    alive: Vec<bool>,
    corrupting: Vec<bool>,
    busy_until: Vec<VirtualTime>,
    step_pending: Vec<bool>,
    /// (time, live tasks across live processors) samples.
    state_samples: Vec<(u64, u64)>,
    sample_period: u64,
    trace: Trace,
}

impl SimSubstrate {
    fn live(&self, p: ProcId) -> bool {
        self.alive.get(p.0 as usize).copied().unwrap_or(false)
    }
}

impl Substrate for SimSubstrate {
    fn n_procs(&self) -> u32 {
        self.alive.len() as u32
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.live(p)
    }

    fn now_units(&self) -> u64 {
        self.now.ticks()
    }

    fn send(&mut self, from: ProcId, to: ProcId, mut msg: Msg) {
        self.msg_seq += 1;
        let at = self.now;
        // A corrupting processor emits detectably wrong replica results
        // (§5.3 experiment) — the same send-side rule as the threaded
        // substrate, so replicated-voting runs agree across backends.
        if !from.is_super_root() && self.corrupting[from.0 as usize] {
            if let Msg::Result(rp) = &mut msg {
                if rp.replica.is_some() {
                    rp.value = corrupt_value(&rp.value);
                }
            }
        }
        if to.is_super_root() {
            // The driver link is reliable with base latency.
            let latency = self.cfg.link.base;
            self.queue.push(at + latency, Ev::Deliver { from, to, msg });
            return;
        }
        // Dead destination known to the transport: the sender's best-effort
        // delivery fails and it learns the destination is unreachable.
        if !self.live(to) && !from.is_super_root() {
            let bounce_at = self.cfg.detector.bounce_time(at);
            self.queue.push(
                bounce_at,
                Ev::Bounce {
                    sender: from,
                    dead: to,
                    msg,
                },
            );
            return;
        }
        let (src, dst) = (if from.is_super_root() { to.0 } else { from.0 }, to.0);
        let latency = self
            .cfg
            .link
            .latency(&self.cfg.topology, src, dst, msg.size(), self.msg_seq);
        self.queue.push(at + latency, Ev::Deliver { from, to, msg });
    }

    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64) {
        self.queue
            .push(self.now + delay, Ev::Timer { proc: owner, timer });
    }

    fn report_death(&mut self, dead: ProcId) {
        // Detector: staggered notices to live peers and the super-root
        // driver, in the canonical recipient order.
        let targets = death_notice_targets(self.n_procs(), |p| self.live(p), dead);
        for (peer_index, to) in targets.into_iter().enumerate() {
            if let Some(at) = self.cfg.detector.notice_time(self.now, peer_index as u32) {
                self.queue.push(at, Ev::Notice { to, dead });
            }
        }
    }

    fn complete_wave(&mut self, proc: ProcId, actions: Vec<Action>, work: u64) {
        // Charge the cost model; the effects only escape the processor if
        // it is still alive when the wave completes.
        let done = self.now + self.cfg.cost.wave_cost(work);
        self.busy_until[proc.0 as usize] = done;
        self.queue.push(done, Ev::Effects { proc, actions });
    }
}

/// The simulated machine.
pub struct Machine {
    program: Arc<Program>,
    nodes: Vec<DriverLoop>,
    superroot: SuperRootDriver,
    sub: SimSubstrate,
    /// When enabled, records `(time, stamp, proc)` at every task creation.
    log_spawns: bool,
    spawn_log: Vec<(u64, LevelStamp, ProcId)>,
}

impl Machine {
    /// Builds a machine for `workload` with per-processor placers from the
    /// configured policy.
    pub fn new(cfg: MachineConfig, workload: &Workload) -> Machine {
        let topo = cfg.topology.clone();
        let policy = cfg.policy;
        let seed = cfg.seed;
        Machine::with_placer_factory(cfg, workload, |p| policy.build(p, &topo, seed))
    }

    /// Builds a machine with custom placers (used by scripted scenarios such
    /// as Figure 1).
    pub fn with_placer_factory(
        cfg: MachineConfig,
        workload: &Workload,
        mut factory: impl FnMut(ProcId) -> Box<dyn Placer>,
    ) -> Machine {
        let n = cfg.topology.len();
        assert!(n >= 1, "need at least one processor");
        let program = Arc::new(workload.program.clone());
        let mut nodes = Vec::with_capacity(n as usize);
        for i in 0..n {
            let id = ProcId(i);
            nodes.push(DriverLoop::new(
                id,
                program.clone(),
                cfg.recovery.clone(),
                factory(id),
            ));
        }
        let superroot = SuperRootDriver::new(workload, &cfg.recovery);
        let trace = Trace::new(cfg.trace);
        let sub = SimSubstrate {
            queue: EventQueue::new(),
            now: VirtualTime::ZERO,
            msg_seq: 0,
            delivered: 0,
            dropped_to_dead: 0,
            bounces: 0,
            alive: vec![true; n as usize],
            corrupting: vec![false; n as usize],
            busy_until: vec![VirtualTime::ZERO; n as usize],
            step_pending: vec![false; n as usize],
            state_samples: Vec::new(),
            sample_period: 2_000,
            trace,
            cfg,
        };
        Machine {
            program,
            nodes,
            superroot,
            sub,
            log_spawns: false,
            spawn_log: Vec::new(),
        }
    }

    /// Enables the placement log (used by scripted scenarios to find crash
    /// instants).
    pub fn enable_spawn_log(&mut self) {
        self.log_spawns = true;
    }

    /// The placement log collected so far.
    pub fn spawn_log(&self) -> &[(u64, LevelStamp, ProcId)] {
        &self.spawn_log
    }

    /// The program under execution.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.sub.now
    }

    /// The trace buffer.
    pub fn trace(&self) -> &Trace {
        &self.sub.trace
    }

    fn live_tasks(&self) -> u64 {
        self.nodes
            .iter()
            .zip(&self.sub.alive)
            .filter(|(_, alive)| **alive)
            .map(|(n, _)| n.engine().task_count() as u64)
            .sum()
    }

    /// Runs the workload under `faults` to completion (or until a budget
    /// trips) and reports.
    pub fn run(mut self, faults: &FaultPlan) -> RunReport {
        // Schedule faults.
        for f in faults.sorted() {
            self.sub.queue.push(
                f.at,
                Ev::Fault {
                    victim: ProcId(f.victim),
                    kind: f.kind,
                },
            );
        }
        // Start engines (arms load beacons).
        for node in &mut self.nodes {
            node.start(&mut self.sub);
        }
        // Launch the program.
        self.superroot.launch(&mut self.sub);
        let first_sample = self.sub.now + self.sub.sample_period;
        self.sub.queue.push(first_sample, Ev::Sample);

        let mut events: u64 = 0;
        let mut finish: Option<VirtualTime> = None;
        while let Some((at, ev)) = self.sub.queue.pop() {
            debug_assert!(at >= self.sub.now, "time must not run backwards");
            self.sub.now = at;
            events += 1;
            if events > self.sub.cfg.max_events || self.sub.now > self.sub.cfg.max_time {
                break;
            }
            self.handle(ev);
            if self.superroot.result().is_some() {
                finish = Some(self.sub.now);
                break;
            }
        }

        self.build_report(events, finish, faults)
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Deliver { from, to, msg } => self.deliver(from, to, msg),
            Ev::Bounce { sender, dead, msg } => {
                self.sub.bounces += 1;
                if self.sub.live(sender) {
                    self.nodes[sender.0 as usize].on_send_failed(dead, msg, &mut self.sub);
                    self.poke(sender);
                }
            }
            Ev::Timer { proc, timer } => {
                if proc.is_super_root() {
                    self.superroot.on_timer(timer, &mut self.sub);
                } else if self.sub.live(proc) {
                    self.nodes[proc.0 as usize].on_timer(timer, &mut self.sub);
                    self.poke(proc);
                }
            }
            Ev::Step { proc } => self.step(proc),
            Ev::Fault { victim, kind } => self.fault(victim, kind),
            Ev::Notice { to, dead } => {
                if to.is_super_root() {
                    self.superroot.on_failure(dead, &mut self.sub);
                } else if self.sub.live(to) {
                    self.nodes[to.0 as usize]
                        .on_message(Msg::FailureNotice { dead }, &mut self.sub);
                    self.poke(to);
                }
            }
            Ev::Sample => {
                let sample = (self.sub.now.ticks(), self.live_tasks());
                self.sub.state_samples.push(sample);
                let next = self.sub.now + self.sub.sample_period;
                self.sub.queue.push(next, Ev::Sample);
            }
            Ev::Effects { proc, actions } => {
                if self.sub.live(proc) {
                    dispatch(&mut self.sub, proc, actions);
                }
            }
        }
    }

    fn deliver(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        if to.is_super_root() {
            self.sub.delivered += 1;
            self.superroot.on_message(msg, &mut self.sub);
            return;
        }
        if !self.sub.live(to) {
            // Fail-silent destination: the message vanishes. (Senders that
            // knew the destination was dead got a Bounce instead.)
            self.sub.dropped_to_dead += 1;
            return;
        }
        self.sub.delivered += 1;
        let now = self.sub.now;
        self.sub.trace.record(now, "deliver", || {
            format!("{from} -> {to}: {:?}", msg.kind())
        });
        self.nodes[to.0 as usize].on_message(msg, &mut self.sub);
        if self.log_spawns {
            let created = self.nodes[to.0 as usize].engine_mut().drain_created();
            for stamp in created {
                self.spawn_log.push((now.ticks(), stamp, to));
            }
        }
        self.poke(to);
    }

    fn step(&mut self, proc: ProcId) {
        self.sub.step_pending[proc.0 as usize] = false;
        if !self.sub.live(proc) {
            return;
        }
        // `complete_wave` on the substrate charges the cost model and
        // defers the wave's effects to its completion instant.
        if self.nodes[proc.0 as usize].run_ready_wave(&mut self.sub) {
            self.poke(proc);
        }
    }

    /// Ensures a Step event is pending when the processor has runnable work.
    fn poke(&mut self, proc: ProcId) {
        let i = proc.0 as usize;
        if self.sub.alive[i] && !self.sub.step_pending[i] && self.nodes[i].has_ready() {
            self.sub.step_pending[i] = true;
            let at = self.sub.busy_until[i].max(self.sub.now);
            self.sub.queue.push(at, Ev::Step { proc });
        }
    }

    fn fault(&mut self, victim: ProcId, kind: FaultKind) {
        let Some(alive) = self.sub.alive.get_mut(victim.0 as usize) else {
            return;
        };
        match kind {
            FaultKind::Corrupt => {
                self.sub.corrupting[victim.0 as usize] = true;
                let now = self.sub.now;
                self.sub
                    .trace
                    .record(now, "corrupt", || format!("{victim}"));
            }
            FaultKind::Crash => {
                if !*alive {
                    return;
                }
                *alive = false;
                let now = self.sub.now;
                self.sub.trace.record(now, "crash", || format!("{victim}"));
                self.sub.report_death(victim);
            }
        }
    }

    fn build_report(
        &mut self,
        events: u64,
        finish: Option<VirtualTime>,
        faults: &FaultPlan,
    ) -> RunReport {
        let totals =
            EngineTotals::collect(self.nodes.iter().map(|n| EngineSnapshot::of(n.engine())));
        RunReport {
            result: self.superroot.result().cloned(),
            completed: finish.is_some(),
            finish: finish.unwrap_or(self.sub.now),
            events,
            delivered: self.sub.delivered,
            dropped_to_dead: self.sub.dropped_to_dead,
            bounces: self.sub.bounces,
            stats: totals.stats,
            per_proc: totals.per_proc,
            ckpt_peak_entries: totals.ckpt_peak_entries,
            ckpt_peak_bytes: totals.ckpt_peak_bytes,
            ckpt_stored: totals.ckpt_stored,
            root_reissues: self.superroot.reissues(),
            state_samples: std::mem::take(&mut self.sub.state_samples),
            spawn_log: std::mem::take(&mut self.spawn_log),
            n_procs: self.nodes.len() as u32,
            faults: faults.events.len(),
        }
    }
}

/// Convenience: run `workload` on `n` processors with `cfg`-defaults and a
/// fault plan.
pub fn run_workload(cfg: MachineConfig, workload: &Workload, faults: &FaultPlan) -> RunReport {
    Machine::new(cfg, workload).run(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::config::RecoveryMode;

    fn cfg(n: u32) -> MachineConfig {
        let mut c = MachineConfig::new(n);
        c.recovery.load_beacon_period = 200;
        c
    }

    #[test]
    fn fault_free_run_matches_reference() {
        let w = Workload::fib(10);
        let report = run_workload(cfg(4), &w, &FaultPlan::none());
        assert!(report.completed);
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        assert!(report.stats.tasks_completed >= 177);
        assert_eq!(report.stats.eval_errors, 0);
    }

    #[test]
    fn fault_free_suite_on_various_machines() {
        for (i, w) in Workload::suite_small().into_iter().enumerate() {
            let mut c = cfg(2 + (i as u32 % 6));
            c.topology = match i % 3 {
                0 => Topology::Complete {
                    n: 2 + (i as u32 % 6),
                },
                1 => Topology::Ring {
                    n: 2 + (i as u32 % 6),
                },
                _ => Topology::Mesh {
                    w: 2,
                    h: (2 + (i as u32 % 6)).div_ceil(2),
                    wrap: false,
                },
            };
            // Keep processor count consistent with topology.
            let report = run_workload(c, &w, &FaultPlan::none());
            assert!(report.completed, "{}", w.name);
            assert_eq!(
                report.result,
                Some(w.reference_result().unwrap()),
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn single_crash_splice_recovers() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        let faults = FaultPlan::crash_at(2, VirtualTime(3_000));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed, "run stalled");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn single_crash_rollback_recovers() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Rollback;
        let faults = FaultPlan::crash_at(1, VirtualTime(3_000));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed, "run stalled");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Workload::quicksort(24, 7);
        let faults = FaultPlan::crash_at(3, VirtualTime(2_500));
        let a = run_workload(cfg(5), &w, &faults);
        let b = run_workload(cfg(5), &w, &faults);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn root_processor_crash_is_survived_via_super_root() {
        let w = Workload::fib(10);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        // Processor 0 hosts the root (launch rotor starts there).
        let faults = FaultPlan::crash_at(0, VirtualTime(1_500));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed);
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        assert!(report.root_reissues >= 1, "super-root reissued the program");
    }
}
