//! The simulated applicative multiprocessor.
//!
//! A [`Machine`] instantiates one protocol [`Engine`] per processor of a
//! topology, moves their messages through the discrete-event queue with
//! topology-dependent latency, charges execution time per evaluation wave,
//! injects faults from a [`FaultPlan`], and runs the reliable super-root on
//! the driver side. Everything is deterministic for a given configuration
//! and seed.

use crate::cost::CostModel;
use crate::report::RunReport;
use splice_applicative::{Program, Value, Workload};
use splice_core::config::Config as RecoveryConfig;
use splice_core::engine::{Action, Engine, Timer};
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::stamp::LevelStamp;
use splice_core::place::Placer;
use splice_core::stats::ProcStats;
use splice_core::superroot::SuperRoot;
use splice_gradient::Policy;
use splice_simnet::detect::DetectorConfig;
use splice_simnet::fault::{FaultKind, FaultPlan};
use splice_simnet::link::LinkModel;
use splice_simnet::queue::EventQueue;
use splice_simnet::time::VirtualTime;
use splice_simnet::topology::Topology;
use splice_simnet::trace::Trace;
use std::sync::Arc;

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Interconnect topology (defines the processor count).
    pub topology: Topology,
    /// Link latency model.
    pub link: LinkModel,
    /// Failure detection timing.
    pub detector: DetectorConfig,
    /// Placement policy.
    pub policy: Policy,
    /// Recovery configuration shared by all engines.
    pub recovery: RecoveryConfig,
    /// Execution cost model.
    pub cost: CostModel,
    /// Seed for stochastic placers and jitter.
    pub seed: u64,
    /// Hard event budget (guards against divergence).
    pub max_events: u64,
    /// Hard virtual-time budget.
    pub max_time: VirtualTime,
    /// Trace capacity (0 disables tracing).
    pub trace: usize,
}

impl MachineConfig {
    /// A sensible default machine: `n` processors, complete graph, splice
    /// recovery, gradient placement.
    pub fn new(n: u32) -> MachineConfig {
        MachineConfig {
            topology: Topology::Complete { n },
            link: LinkModel::default(),
            detector: DetectorConfig::default(),
            policy: Policy::Gradient,
            recovery: RecoveryConfig::default(),
            cost: CostModel::default(),
            seed: 1,
            max_events: 200_000_000,
            max_time: VirtualTime(u64::MAX / 4),
            trace: 0,
        }
    }
}

enum Ev {
    Deliver {
        from: ProcId,
        to: ProcId,
        msg: Msg,
    },
    Bounce {
        sender: ProcId,
        dead: ProcId,
        msg: Msg,
    },
    Timer {
        proc: ProcId,
        timer: Timer,
    },
    Step {
        proc: ProcId,
    },
    Fault {
        victim: ProcId,
        kind: FaultKind,
    },
    Notice {
        to: ProcId,
        dead: ProcId,
    },
    /// Periodic state-size sampling for the global-checkpoint baseline.
    Sample,
    /// Deferred wave effects: a wave's sends/timers materialize when the
    /// wave completes, and die with the processor if it crashed mid-wave
    /// (fail-silent: "it will no longer transmit any valid messages").
    Effects {
        proc: ProcId,
        actions: Vec<Action>,
    },
}

struct ProcState {
    engine: Engine,
    alive: bool,
    corrupting: bool,
    busy_until: VirtualTime,
    step_pending: bool,
}

/// The simulated machine.
pub struct Machine {
    cfg: MachineConfig,
    program: Arc<Program>,
    procs: Vec<ProcState>,
    superroot: SuperRoot,
    queue: EventQueue<Ev>,
    now: VirtualTime,
    msg_seq: u64,
    delivered: u64,
    dropped_to_dead: u64,
    bounces: u64,
    launch_rotor: u32,
    /// (time, live tasks across live processors) samples.
    state_samples: Vec<(u64, u64)>,
    sample_period: u64,
    trace: Trace,
    /// When enabled, records `(time, stamp, proc)` at every task creation.
    log_spawns: bool,
    spawn_log: Vec<(u64, LevelStamp, ProcId)>,
}

impl Machine {
    /// Builds a machine for `workload` with per-processor placers from the
    /// configured policy.
    pub fn new(cfg: MachineConfig, workload: &Workload) -> Machine {
        let topo = cfg.topology.clone();
        let policy = cfg.policy;
        let seed = cfg.seed;
        Machine::with_placer_factory(cfg, workload, |p| policy.build(p, &topo, seed))
    }

    /// Builds a machine with custom placers (used by scripted scenarios such
    /// as Figure 1).
    pub fn with_placer_factory(
        cfg: MachineConfig,
        workload: &Workload,
        mut factory: impl FnMut(ProcId) -> Box<dyn Placer>,
    ) -> Machine {
        let n = cfg.topology.len();
        assert!(n >= 1, "need at least one processor");
        let program = Arc::new(workload.program.clone());
        let mut procs = Vec::with_capacity(n as usize);
        for i in 0..n {
            let id = ProcId(i);
            let engine = Engine::new(id, program.clone(), cfg.recovery.clone(), factory(id));
            procs.push(ProcState {
                engine,
                alive: true,
                corrupting: false,
                busy_until: VirtualTime::ZERO,
                step_pending: false,
            });
        }
        let superroot = SuperRoot::new(
            workload.entry,
            workload.args.clone(),
            cfg.recovery.ancestor_depth,
            cfg.recovery.ack_timeout,
        );
        let trace = Trace::new(cfg.trace);
        Machine {
            program,
            procs,
            superroot,
            queue: EventQueue::new(),
            now: VirtualTime::ZERO,
            msg_seq: 0,
            delivered: 0,
            dropped_to_dead: 0,
            bounces: 0,
            launch_rotor: 0,
            state_samples: Vec::new(),
            sample_period: 2_000,
            trace,
            log_spawns: false,
            spawn_log: Vec::new(),
            cfg,
        }
    }

    /// Enables the placement log (used by scripted scenarios to find crash
    /// instants).
    pub fn enable_spawn_log(&mut self) {
        self.log_spawns = true;
    }

    /// The placement log collected so far.
    pub fn spawn_log(&self) -> &[(u64, LevelStamp, ProcId)] {
        &self.spawn_log
    }

    /// The program under execution.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The trace buffer.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn pick_live(&mut self) -> ProcId {
        let n = self.procs.len() as u32;
        for _ in 0..n {
            let candidate = self.launch_rotor % n;
            self.launch_rotor = self.launch_rotor.wrapping_add(1);
            if self.procs[candidate as usize].alive {
                return ProcId(candidate);
            }
        }
        ProcId(0)
    }

    fn live_tasks(&self) -> u64 {
        self.procs
            .iter()
            .filter(|p| p.alive)
            .map(|p| p.engine.task_count() as u64)
            .sum()
    }

    /// Runs the workload under `faults` to completion (or until a budget
    /// trips) and reports.
    pub fn run(mut self, faults: &FaultPlan) -> RunReport {
        // Schedule faults.
        for f in faults.sorted() {
            self.queue.push(
                f.at,
                Ev::Fault {
                    victim: ProcId(f.victim),
                    kind: f.kind,
                },
            );
        }
        // Start engines (arms load beacons).
        for i in 0..self.procs.len() {
            let actions = self.procs[i].engine.on_start();
            self.apply_actions(ProcId(i as u32), self.now, actions);
        }
        // Launch the program.
        let dest = self.pick_live();
        let actions = self.superroot.launch(dest);
        self.apply_superroot_actions(actions);
        self.queue.push(self.now + self.sample_period, Ev::Sample);

        let mut events: u64 = 0;
        let mut finish: Option<VirtualTime> = None;
        while let Some((at, ev)) = self.queue.pop() {
            debug_assert!(at >= self.now, "time must not run backwards");
            self.now = at;
            events += 1;
            if events > self.cfg.max_events || self.now > self.cfg.max_time {
                break;
            }
            self.handle(ev);
            if self.superroot.result().is_some() {
                finish = Some(self.now);
                break;
            }
        }

        self.build_report(events, finish, faults)
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Deliver { from, to, msg } => self.deliver(from, to, msg),
            Ev::Bounce { sender, dead, msg } => {
                self.bounces += 1;
                if to_alive(&self.procs, sender) {
                    let actions = self.procs[sender.0 as usize].engine.on_send_failed(dead, msg);
                    self.apply_actions(sender, self.now, actions);
                    self.poke(sender);
                }
            }
            Ev::Timer { proc, timer } => {
                if proc.is_super_root() {
                    let fallback = self.pick_live();
                    let actions = self.superroot.on_timer(timer, fallback);
                    self.apply_superroot_actions(actions);
                } else if to_alive(&self.procs, proc) {
                    let actions = self.procs[proc.0 as usize].engine.on_timer(timer);
                    self.apply_actions(proc, self.now, actions);
                    self.poke(proc);
                }
            }
            Ev::Step { proc } => self.step(proc),
            Ev::Fault { victim, kind } => self.fault(victim, kind),
            Ev::Notice { to, dead } => {
                if to.is_super_root() {
                    let fallback = self.pick_live();
                    let actions = self.superroot.on_failure(dead, fallback);
                    self.apply_superroot_actions(actions);
                } else if to_alive(&self.procs, to) {
                    let actions = self.procs[to.0 as usize]
                        .engine
                        .on_message(Msg::FailureNotice { dead });
                    self.apply_actions(to, self.now, actions);
                    self.poke(to);
                }
            }
            Ev::Sample => {
                self.state_samples.push((self.now.ticks(), self.live_tasks()));
                self.queue.push(self.now + self.sample_period, Ev::Sample);
            }
            Ev::Effects { proc, actions } => {
                if to_alive(&self.procs, proc) {
                    self.apply_actions(proc, self.now, actions);
                }
            }
        }
    }

    fn deliver(&mut self, from: ProcId, to: ProcId, mut msg: Msg) {
        if to.is_super_root() {
            self.delivered += 1;
            let fallback = self.pick_live();
            let actions = self.superroot.on_message(msg, fallback);
            self.apply_superroot_actions(actions);
            return;
        }
        if !to_alive(&self.procs, to) {
            // Fail-silent destination: the message vanishes. (Senders that
            // knew the destination was dead got a Bounce instead.)
            self.dropped_to_dead += 1;
            return;
        }
        // A corrupting processor emits detectably wrong replica results
        // (§5.3 experiment); everything else passes through.
        if !from.is_super_root() && self.procs[from.0 as usize].corrupting {
            if let Msg::Result(rp) = &mut msg {
                if rp.replica.is_some() {
                    rp.value = corrupt(&rp.value);
                }
            }
        }
        self.delivered += 1;
        self.trace.record(self.now, "deliver", || {
            format!("{from} -> {to}: {:?}", msg.kind())
        });
        let actions = self.procs[to.0 as usize].engine.on_message(msg);
        if self.log_spawns {
            let created = self.procs[to.0 as usize].engine.drain_created();
            for stamp in created {
                self.spawn_log.push((self.now.ticks(), stamp, to));
            }
        }
        self.apply_actions(to, self.now, actions);
        self.poke(to);
    }

    fn step(&mut self, proc: ProcId) {
        let state = &mut self.procs[proc.0 as usize];
        state.step_pending = false;
        if !state.alive {
            return;
        }
        if let Some(key) = state.engine.pop_ready() {
            let (actions, work) = state.engine.run_wave(key);
            let cost = self.cfg.cost.wave_cost(work);
            let done = self.now + cost;
            state.busy_until = done;
            // Effects (sends, timers) materialize when the wave completes.
            self.apply_actions(proc, done, actions);
            self.poke(proc);
        }
    }

    /// Ensures a Step event is pending when the processor has runnable work.
    fn poke(&mut self, proc: ProcId) {
        let state = &mut self.procs[proc.0 as usize];
        if state.alive && !state.step_pending && state.engine.has_ready() {
            state.step_pending = true;
            let at = state.busy_until.max(self.now);
            self.queue.push(at, Ev::Step { proc });
        }
    }

    fn fault(&mut self, victim: ProcId, kind: FaultKind) {
        let Some(state) = self.procs.get_mut(victim.0 as usize) else {
            return;
        };
        match kind {
            FaultKind::Corrupt => {
                state.corrupting = true;
                self.trace.record(self.now, "corrupt", || format!("{victim}"));
            }
            FaultKind::Crash => {
                if !state.alive {
                    return;
                }
                state.alive = false;
                self.trace.record(self.now, "crash", || format!("{victim}"));
                // Detector: staggered notices to live peers and the
                // super-root driver.
                let mut peer_index = 0;
                for i in 0..self.procs.len() {
                    if i as u32 == victim.0 || !self.procs[i].alive {
                        continue;
                    }
                    if let Some(at) = self.cfg.detector.notice_time(self.now, peer_index) {
                        self.queue.push(
                            at,
                            Ev::Notice {
                                to: ProcId(i as u32),
                                dead: victim,
                            },
                        );
                    }
                    peer_index += 1;
                }
                if let Some(at) = self.cfg.detector.notice_time(self.now, peer_index) {
                    self.queue.push(
                        at,
                        Ev::Notice {
                            to: ProcId::SUPER_ROOT,
                            dead: victim,
                        },
                    );
                }
            }
        }
    }

    fn apply_actions(&mut self, proc: ProcId, at: VirtualTime, actions: Vec<Action>) {
        if at > self.now {
            // Defer: the effects only escape the processor if it is still
            // alive when the wave completes.
            self.queue.push(at, Ev::Effects { proc, actions });
            return;
        }
        for a in actions {
            match a {
                Action::Send { to, msg } => self.send(proc, to, at, msg),
                Action::SetTimer { timer, delay } => {
                    self.queue.push(at + delay, Ev::Timer { proc, timer });
                }
            }
        }
    }

    fn apply_superroot_actions(&mut self, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => self.send(ProcId::SUPER_ROOT, to, self.now, msg),
                Action::SetTimer { timer, delay } => {
                    self.queue.push(
                        self.now + delay,
                        Ev::Timer {
                            proc: ProcId::SUPER_ROOT,
                            timer,
                        },
                    );
                }
            }
        }
    }

    fn send(&mut self, from: ProcId, to: ProcId, at: VirtualTime, msg: Msg) {
        self.msg_seq += 1;
        if to.is_super_root() {
            // The driver link is reliable with base latency.
            let latency = self.cfg.link.base;
            self.queue.push(at + latency, Ev::Deliver { from, to, msg });
            return;
        }
        // Dead destination known to the transport: the sender's best-effort
        // delivery fails and it learns the destination is unreachable.
        if !to_alive(&self.procs, to) && !from.is_super_root() {
            let bounce_at = self.cfg.detector.bounce_time(at);
            self.queue.push(
                bounce_at,
                Ev::Bounce {
                    sender: from,
                    dead: to,
                    msg,
                },
            );
            return;
        }
        let (src, dst) = (
            if from.is_super_root() { to.0 } else { from.0 },
            to.0,
        );
        let latency = self
            .cfg
            .link
            .latency(&self.cfg.topology, src, dst, msg.size(), self.msg_seq);
        self.queue.push(at + latency, Ev::Deliver { from, to, msg });
    }

    fn build_report(
        &mut self,
        events: u64,
        finish: Option<VirtualTime>,
        faults: &FaultPlan,
    ) -> RunReport {
        let mut total = ProcStats::default();
        let mut per_proc = Vec::with_capacity(self.procs.len());
        let mut ckpt_peak_entries = 0usize;
        let mut ckpt_peak_bytes = 0usize;
        let mut ckpt_stored = 0u64;
        for p in &self.procs {
            total += p.engine.stats();
            per_proc.push(p.engine.stats().clone());
            ckpt_peak_entries += p.engine.checkpoints().peak_entries();
            ckpt_peak_bytes += p.engine.checkpoints().peak_bytes();
            ckpt_stored += p.engine.checkpoints().stored_total();
        }
        RunReport {
            result: self.superroot.result().cloned(),
            completed: finish.is_some(),
            finish: finish.unwrap_or(self.now),
            events,
            delivered: self.delivered,
            dropped_to_dead: self.dropped_to_dead,
            bounces: self.bounces,
            stats: total,
            per_proc,
            ckpt_peak_entries,
            ckpt_peak_bytes,
            ckpt_stored,
            root_reissues: self.superroot.reissues,
            state_samples: std::mem::take(&mut self.state_samples),
            spawn_log: std::mem::take(&mut self.spawn_log),
            n_procs: self.procs.len() as u32,
            faults: faults.events.len(),
        }
    }
}

fn to_alive(procs: &[ProcState], p: ProcId) -> bool {
    procs
        .get(p.0 as usize)
        .map(|s| s.alive)
        .unwrap_or(false)
}

/// Deterministic, detectable corruption of a value.
fn corrupt(v: &Value) -> Value {
    match v {
        Value::Int(n) => Value::Int(n.wrapping_mul(31).wrapping_add(7)),
        Value::Bool(b) => Value::Bool(!b),
        other => Value::list([other.clone(), Value::str("corrupt")]),
    }
}

/// Convenience: run `workload` on `n` processors with `cfg`-defaults and a
/// fault plan.
pub fn run_workload(cfg: MachineConfig, workload: &Workload, faults: &FaultPlan) -> RunReport {
    Machine::new(cfg, workload).run(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::config::RecoveryMode;

    fn cfg(n: u32) -> MachineConfig {
        let mut c = MachineConfig::new(n);
        c.recovery.load_beacon_period = 200;
        c
    }

    #[test]
    fn fault_free_run_matches_reference() {
        let w = Workload::fib(10);
        let report = run_workload(cfg(4), &w, &FaultPlan::none());
        assert!(report.completed);
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        assert!(report.stats.tasks_completed >= 177);
        assert_eq!(report.stats.eval_errors, 0);
    }

    #[test]
    fn fault_free_suite_on_various_machines() {
        for (i, w) in Workload::suite_small().into_iter().enumerate() {
            let mut c = cfg(2 + (i as u32 % 6));
            c.topology = match i % 3 {
                0 => Topology::Complete { n: 2 + (i as u32 % 6) },
                1 => Topology::Ring { n: 2 + (i as u32 % 6) },
                _ => Topology::Mesh {
                    w: 2,
                    h: (2 + (i as u32 % 6)).div_ceil(2),
                    wrap: false,
                },
            };
            // Keep processor count consistent with topology.
            let report = run_workload(c, &w, &FaultPlan::none());
            assert!(report.completed, "{}", w.name);
            assert_eq!(
                report.result,
                Some(w.reference_result().unwrap()),
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn single_crash_splice_recovers() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        let faults = FaultPlan::crash_at(2, VirtualTime(3_000));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed, "run stalled");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn single_crash_rollback_recovers() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Rollback;
        let faults = FaultPlan::crash_at(1, VirtualTime(3_000));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed, "run stalled");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Workload::quicksort(24, 7);
        let faults = FaultPlan::crash_at(3, VirtualTime(2_500));
        let a = run_workload(cfg(5), &w, &faults);
        let b = run_workload(cfg(5), &w, &faults);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn root_processor_crash_is_survived_via_super_root() {
        let w = Workload::fib(10);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        // Processor 0 hosts the root (launch rotor starts there).
        let faults = FaultPlan::crash_at(0, VirtualTime(1_500));
        let report = run_workload(c, &w, &faults);
        assert!(report.completed);
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        assert!(report.root_reissues >= 1, "super-root reissued the program");
    }
}
