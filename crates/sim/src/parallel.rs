//! The parallel-reactor machine: one reactor pump per core.
//!
//! [`ParallelReactorMachine`] is the fourth backend front-end: the same
//! [`MachineConfig`] and [`FaultPlan`] in, the same [`RunReport`] out, but
//! execution spreads the engines over `cfg.threads` reactor pumps
//! ([`splice_harness::ReactorCluster`]), each an OS thread running the
//! cooperative-reactor loop over its partition. Cross-reactor sends travel
//! over per-pair bounded channels; engines migrate between pumps when the
//! coordinator sees a load imbalance (barrier-granular work stealing).
//!
//! **Determinism.** The pumps run in BSP-style rounds: within a round each
//! pump is sequential over its own deterministic state, and everything
//! that crosses a pump boundary (envelopes, the virtual clock, faults,
//! super-root traffic, migration commits) moves only at the barrier, in
//! pump order. The interleaving of OS threads therefore never reaches the
//! protocol: a run is a pure function of `(config, workload, plan)` — the
//! property the differential fault-plan fuzz suite
//! (`tests/backend_fuzz.rs`) checks against the DES and the single-thread
//! reactor at several thread counts.
//!
//! **Clock semantics.** The cluster clock advances at barriers by the
//! round's summed wave cost divided by the live engine count (with a
//! deterministic remainder carry) — the same parallel charge as the
//! single-thread reactor, aggregated per round instead of per wave. A
//! round executes at most [`WAVE_BURST`](splice_harness::parallel::WAVE_BURST)
//! waves per ready engine, so the per-round charge is bounded by a few
//! wave costs and fault plans written in virtual time land mid-run with
//! the same granularity as on the other backends.
//!
//! With `threads == 1` the single pump runs inline on the coordinator
//! thread — no channels, no barriers to wait on — so the parallel machine
//! degrades to the reactor's cost profile instead of paying coordination
//! tax for parallelism it does not have.

use crate::machine::MachineConfig;
use crate::report::RunReport;
use splice_applicative::{Program, Workload};
use splice_core::engine::Timer;
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::place::Placer;
use splice_core::sink::ActionSink;
use splice_harness::{
    ClusterMap, DriverLoop, EngineSnapshot, EngineTotals, Pump, PumpHarvest, ReactorCluster,
    RoundInput, RoundOutput, ShardMap, Substrate, SuperRootDriver, TimerWheel, Transfer,
};
use splice_simnet::fault::{FaultKind, FaultOutcome, FaultPlan, PlanRun};
use splice_simnet::time::VirtualTime;
use splice_simnet::trace::{TraceEvent, TraceKind, Tracer};
use std::sync::Arc;

/// A pump must be this many ready engines ahead of the laziest pump (and
/// at least this loaded in absolute terms) before the coordinator migrates
/// work — hysteresis so transient ripples do not thrash engines around.
const STEAL_THRESHOLD: usize = 8;

/// The coordinator-side [`Substrate`] the [`SuperRootDriver`] runs
/// against: sends become [`Transfer`]s injected into the destination
/// pump's next round, timers ride a coordinator-local wheel. The driver
/// link is reliable and out-of-band, exactly like every other backend.
struct CoordSub {
    cluster: Arc<ClusterMap>,
    now: u64,
    /// Per-pump injection buffers for the next round.
    inject: Vec<Vec<Transfer>>,
    timers: TimerWheel<u64, Timer>,
}

impl Substrate for CoordSub {
    fn n_procs(&self) -> u32 {
        self.cluster.n()
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.cluster.is_live(p)
    }

    fn now_units(&self) -> u64 {
        self.now
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        if !self.cluster.is_live(to) {
            // The super-root's sends to dead processors vanish; it
            // discovers the loss through its own timers, like everywhere
            // else.
            return;
        }
        let pump = self.cluster.pump_of(to) as usize;
        self.inject[pump].push(Transfer::Deliver { from, to, msg });
    }

    fn arm_timer(&mut self, _owner: ProcId, timer: Timer, delay: u64) {
        self.timers.arm(self.now + delay, timer);
    }

    fn report_death(&mut self, _dead: ProcId) {
        // Death notices to workers are the pumps' job; the coordinator
        // hands the super-root its notice directly.
    }

    fn complete_wave(&mut self, _proc: ProcId, _sink: &mut ActionSink, _work: u64) {}
}

/// The multi-core reactor machine.
pub struct ParallelReactorMachine {
    program: Arc<Program>,
    cluster: Arc<ClusterMap>,
    fleet: ReactorCluster,
    superroot: SuperRootDriver,
    csub: CoordSub,
    cfg: MachineConfig,
}

impl ParallelReactorMachine {
    /// Builds a parallel-reactor machine for `workload`;
    /// `cfg.threads` pumps (clamped to `[1, n]`), engines partitioned in
    /// contiguous blocks.
    pub fn new(cfg: MachineConfig, workload: &Workload) -> ParallelReactorMachine {
        let topo = cfg.topology.clone();
        let policy = cfg.policy;
        let seed = cfg.seed;
        // One shared roster for every per-engine placer: per-placer roster
        // copies would make an n-engine build O(n^2) memory.
        let all: Arc<[ProcId]> = (0..topo.len()).map(ProcId).collect();
        ParallelReactorMachine::with_placer_factory(cfg, workload, |p| {
            policy.build_shared(p, &topo, seed, &all)
        })
    }

    /// Builds a parallel-reactor machine with custom placers.
    pub fn with_placer_factory(
        cfg: MachineConfig,
        workload: &Workload,
        mut factory: impl FnMut(ProcId) -> Box<dyn Placer>,
    ) -> ParallelReactorMachine {
        let n = cfg.topology.len();
        assert!(n >= 1, "need at least one processor");
        let t = cfg.threads.clamp(1, n);
        let program = Arc::new(workload.program.clone());
        let recovery = cfg.engine_recovery();
        // Contiguous block partition: pump i starts at floor(i*n/t).
        let pump_of = |p: u32| -> u32 { ((u64::from(p) * u64::from(t)) / u64::from(n)) as u32 };
        let cluster = Arc::new(ClusterMap::new(n, cfg.detector.broadcast, pump_of));
        let map = ShardMap::new(cfg.topology.shard_count(), cfg.topology.per_shard());
        let mut pumps = Vec::with_capacity(t as usize);
        let mut roster: Vec<Vec<(ProcId, Box<DriverLoop>)>> = (0..t).map(|_| Vec::new()).collect();
        for i in 0..n {
            let id = ProcId(i);
            roster[pump_of(i) as usize].push((
                id,
                Box::new(DriverLoop::new(
                    id,
                    program.clone(),
                    recovery.clone(),
                    factory(id),
                )),
            ));
        }
        for (i, engines) in roster.into_iter().enumerate() {
            pumps.push(Pump::new(
                i as u32,
                t,
                cluster.clone(),
                engines,
                map,
                cfg.router_latency,
                cfg.batch_window,
                cfg.trace,
            ));
        }
        let fleet = ReactorCluster::new(pumps, cluster.clone());
        let superroot = SuperRootDriver::new(workload, &cfg.recovery);
        let csub = CoordSub {
            cluster: cluster.clone(),
            now: 0,
            inject: (0..t).map(|_| Vec::new()).collect(),
            timers: TimerWheel::new(),
        };
        ParallelReactorMachine {
            program,
            cluster,
            fleet,
            superroot,
            csub,
            cfg,
        }
    }

    /// The program under execution.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Runs the workload under `faults` to completion (or until it
    /// quiesces without a result, or a budget trips) and reports.
    pub fn run(self, faults: &FaultPlan) -> RunReport {
        self.run_traced(faults).0
    }

    /// Like [`ParallelReactorMachine::run`], but also returns the recorded
    /// trace events: the coordinator's fault events first, then each
    /// pump's stream in pump order (empty unless `cfg.trace` records).
    pub fn run_traced(mut self, faults: &FaultPlan) -> (RunReport, Vec<TraceEvent>) {
        // The coordinator's own trace head: barrier faults are applied
        // here, not on any pump, so they are narrated here; pump tracers
        // are folded in at harvest, in pump order.
        let mut tracer = Tracer::new(self.cfg.trace);
        let t = self.fleet.threads() as usize;
        let mut plan = PlanRun::new(faults, self.cluster.n());
        self.superroot.launch(&mut self.csub);

        let mut events: u64 = 0;
        let mut finish: Option<VirtualTime> = None;
        let mut budget_tripped = false;
        let mut sr_delivered: u64 = 0;
        let mut steals: u64 = 0;
        let mut carry: u64 = 0;
        let mut kills: Vec<ProcId> = Vec::new();
        // Recycled round-trip buffers, one set per pump.
        let mut inputs: Vec<RoundInput> = Vec::with_capacity(t);
        let mut outs: Vec<RoundOutput> = Vec::with_capacity(t);
        let mut sr_bufs: Vec<Vec<Msg>> = (0..t).map(|_| Vec::new()).collect();
        let mut donated_bufs: Vec<Vec<ProcId>> = (0..t).map(|_| Vec::new()).collect();
        // Per-pump ready-queue depth after the last round, for stealing.
        let mut ready: Vec<usize> = vec![0; t];
        let mut any_rounds = false;

        'run: loop {
            events += 1;
            if events > self.cfg.max_events || VirtualTime(self.csub.now) > self.cfg.max_time {
                budget_tripped = true;
                break;
            }
            // Faults due at this barrier. The coordinator owns the global
            // transition rules; victims' mailboxes and the death notices
            // are the pumps' side of the kill list.
            kills.clear();
            while let Some((ev, outcome)) = plan.pop_due(VirtualTime(self.csub.now)) {
                let victim = ProcId(ev.victim);
                tracer.emit(
                    VirtualTime(self.csub.now),
                    TraceKind::Fault {
                        victim: ev.victim,
                        kind: match ev.kind {
                            FaultKind::Crash => 0,
                            FaultKind::Corrupt => 1,
                        },
                        applied: outcome != FaultOutcome::Ignored,
                    },
                );
                match outcome {
                    FaultOutcome::Crashed => {
                        self.cluster.set_dead(victim);
                        kills.push(victim);
                    }
                    FaultOutcome::Corrupted => self.cluster.set_corrupting(victim),
                    FaultOutcome::Ignored => {}
                }
            }
            // The super-root's failure notice is the coordinator's to
            // deliver — once, not once per pump.
            if self.cluster.broadcast() {
                for &v in &kills {
                    self.superroot.on_failure(v, &mut self.csub);
                }
            }
            // Root-replica crashes ride their own cursor: the victim
            // domain is replica ranks, not processor ids. A deposed
            // primary's successor takes over (reissuing the root wave)
            // inside `crash_replica`; the reissue injects through the
            // coordinator substrate like any other super-root output.
            while let Some(ev) = plan.pop_due_root(VirtualTime(self.csub.now)) {
                let applied = self.superroot.replica_live(ev.rank);
                tracer.emit(
                    VirtualTime(self.csub.now),
                    TraceKind::Fault {
                        victim: ev.rank,
                        kind: 2,
                        applied,
                    },
                );
                let failed_over = self.superroot.crash_replica(ev.rank, &mut self.csub);
                if failed_over {
                    let new_primary = self.superroot.primary().unwrap_or(u32::MAX);
                    tracer.emit(
                        VirtualTime(self.csub.now),
                        TraceKind::RootFailover { rank: new_primary },
                    );
                }
            }
            // Super-root timers due under the barrier clock.
            while let Some(timer) = self.csub.timers.pop_due(&self.csub.now) {
                self.superroot.on_timer(timer, &mut self.csub);
            }
            // Work stealing: if the last round left one pump far busier
            // than another, migrate half the gap at this barrier.
            let mut donate: Vec<Option<(u32, u32)>> = vec![None; t];
            if t > 1 && any_rounds {
                let (mut hi, mut lo) = (0usize, 0usize);
                for (i, &r) in ready.iter().enumerate() {
                    if r > ready[hi] {
                        hi = i;
                    }
                    if r < ready[lo] {
                        lo = i;
                    }
                }
                if ready[hi] >= STEAL_THRESHOLD && ready[hi] >= 2 * ready[lo] + STEAL_THRESHOLD {
                    donate[hi] = Some((((ready[hi] - ready[lo]) / 2) as u32, lo as u32));
                }
            }
            // Dispatch the round: every pump gets the barrier clock, the
            // kill list, its injections and its recycled buffers.
            for i in 0..t {
                inputs.push(RoundInput {
                    now: self.csub.now,
                    kills: kills.clone(),
                    inject: std::mem::take(&mut self.csub.inject[i]),
                    donate: donate[i],
                    sr_mail_buf: std::mem::take(&mut sr_bufs[i]),
                    donated_buf: std::mem::take(&mut donated_bufs[i]),
                });
            }
            self.fleet.round(&mut inputs, &mut outs);
            any_rounds = true;
            // Merge the barrier: pump order keeps every cross-pump effect
            // deterministic.
            let mut waves: u64 = 0;
            let mut turns: u64 = 0;
            let mut work: u64 = 0;
            let mut backlog: u64 = 0;
            let mut total_ready: usize = 0;
            let mut sent_cross = false;
            let mut sr_delayed: u64 = 0;
            let mut next_deadline: Option<u64> = None;
            for (i, mut out) in outs.drain(..).enumerate() {
                events += out.turns;
                turns += out.turns;
                waves += out.waves;
                work += out.work;
                backlog += out.backlog;
                total_ready += out.ready;
                ready[i] = out.ready;
                sent_cross |= out.sent_cross;
                sr_delayed += out.pending_sr_delayed;
                next_deadline = match (next_deadline, out.next_deadline) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if let Some((_, dest)) = donate[i] {
                    for &p in &out.donated {
                        self.cluster.set_pump(p, dest);
                    }
                    steals += out.donated.len() as u64;
                }
                out.donated.clear();
                for msg in out.sr_mail.drain(..) {
                    sr_delivered += 1;
                    self.superroot.on_message(msg, &mut self.csub);
                }
                sr_bufs[i] = out.sr_mail;
                donated_bufs[i] = out.donated;
                self.csub.inject[i] = out.spent_inject;
            }
            if self.superroot.result().is_some() {
                finish = Some(VirtualTime(self.csub.now));
                break;
            }
            // With every root replica dead the super-root role itself is
            // gone: inputs are discarded, so no delivery can ever set the
            // result. Quiesce as stalled immediately.
            if !self.superroot.has_live_replica() {
                break;
            }
            if waves > 0 || turns > 0 {
                // Parallel clock charge, aggregated per round: the round's
                // waves ran spread over `live` engines, so the emulated
                // machine's clock moves by total cost / live (carry keeps
                // the division exact over time). A round of message-only
                // turns (zero waves) still pays the fixed dispatch cost:
                // on the DES every hop charges link latency, and a
                // message relay cycle with no runnable waves — a salvage
                // packet orbiting between two twins that each point the
                // child instance at the other — would otherwise freeze
                // the clock so no timeout could ever break it.
                carry += waves * self.cfg.cost.wave_base + work * self.cfg.cost.per_work_unit;
                if waves == 0 {
                    carry += turns * self.cfg.cost.wave_base;
                }
                let live = u64::from(plan.state().live_count().max(1));
                self.csub.now += carry / live;
                carry %= live;
                continue;
            }
            // No wave ran anywhere. Messages still in flight (a flushed
            // envelope, a pending injection) mean the next round has work
            // without the clock moving.
            let injected = self.csub.inject.iter().any(|b| !b.is_empty());
            if total_ready > 0 || backlog > 0 || sent_cross || injected {
                continue;
            }
            // Idle. With every engine dead and no result parked anywhere,
            // the super-root's hopeless reissue cycle must not spin the
            // clock forever.
            if plan.state().live_count() == 0 && sr_delayed == 0 {
                break;
            }
            // Skip the clock to the next thing that can happen: a pump
            // deadline, a super-root timer, or a scheduled fault. Nothing
            // left at all is quiescence without a result.
            let next_sr = self.csub.timers.next_deadline().copied();
            let next_fault = plan.next_at().map(|f| f.ticks());
            let target = [next_deadline, next_sr, next_fault]
                .into_iter()
                .flatten()
                .min();
            match target {
                Some(at) => self.csub.now = self.csub.now.max(at),
                None => break 'run,
            }
        }

        let stalled = finish.is_none() && !budget_tripped;
        self.build_report(
            events,
            finish,
            stalled,
            faults,
            sr_delivered,
            steals,
            tracer,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build_report(
        self,
        events: u64,
        finish: Option<VirtualTime>,
        stalled: bool,
        faults: &FaultPlan,
        sr_delivered: u64,
        steals: u64,
        mut tracer: Tracer,
    ) -> (RunReport, Vec<TraceEvent>) {
        let ParallelReactorMachine {
            fleet,
            superroot,
            csub,
            cfg,
            cluster,
            ..
        } = self;
        let threads = fleet.threads();
        let harvests: Vec<PumpHarvest> = fleet.finish();
        let mut engines: Vec<(u32, Box<DriverLoop>)> = Vec::with_capacity(cluster.n() as usize);
        let mut delivered = sr_delivered;
        let mut dropped_to_dead = 0;
        let mut bounces = 0;
        let mut msgs_cross = 0;
        let mut shard_stats = splice_harness::ShardStats::default();
        let mut batch_envelopes = 0;
        let mut batch_msgs = 0;
        // Coordinator events first (barrier faults), then each pump's
        // stream in pump order — the parallel backend's canonical order.
        let mut trace_events = tracer.take_events();
        for h in harvests {
            engines.extend(h.engines);
            delivered += h.delivered;
            dropped_to_dead += h.dropped_to_dead;
            bounces += h.bounces;
            msgs_cross += h.msgs_cross;
            shard_stats.absorb(&h.shard_stats);
            batch_envelopes += h.batch_stats.envelopes;
            batch_msgs += h.batch_stats.messages;
            trace_events.extend(tracer.absorb(h.tracer));
        }
        // Migrated engines live in their stealer's harvest; global engine
        // order is restored here so per-proc stats index by ProcId.
        engines.sort_by_key(|(p, _)| *p);
        let totals =
            EngineTotals::collect(engines.iter().map(|(_, n)| EngineSnapshot::of(n.engine())));
        let report = RunReport {
            result: superroot.result().cloned(),
            completed: finish.is_some(),
            stalled,
            finish: finish.unwrap_or(VirtualTime(csub.now)),
            events,
            delivered,
            dropped_to_dead,
            bounces,
            stats: totals.stats,
            per_proc: totals.per_proc,
            ckpt_peak_entries: totals.ckpt_peak_entries,
            ckpt_peak_bytes: totals.ckpt_peak_bytes,
            ckpt_stored: totals.ckpt_stored,
            root_reissues: superroot.reissues(),
            root_failovers: superroot.failovers(),
            root_replicas: superroot.replicas(),
            state_samples: Vec::new(),
            spawn_log: Vec::new(),
            n_procs: cluster.n(),
            shards: cfg.topology.shard_count(),
            shard_msgs_intra: shard_stats.intra_msgs,
            shard_msgs_inter: shard_stats.inter_msgs,
            batch_envelopes,
            batch_msgs,
            faults: faults.events.len() + faults.root_events.len(),
            threads,
            msgs_cross_reactor: msgs_cross,
            steals,
            frames_sent: 0,
            frames_resent: 0,
            reconnects: 0,
            decode_errors: 0,
            trace: tracer.summary(),
            policy: cfg.recovery.policy.kind,
        };
        (report, trace_events)
    }
}

/// Convenience: run `workload` on the parallel-reactor backend under `cfg`
/// and a fault plan.
pub fn run_parallel_reactor(
    cfg: MachineConfig,
    workload: &Workload,
    faults: &FaultPlan,
) -> RunReport {
    ParallelReactorMachine::new(cfg, workload).run(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::config::RecoveryMode;
    use splice_gradient::Policy;
    use splice_simnet::fault::FaultKind;

    fn cfg(n: u32, threads: u32) -> MachineConfig {
        let mut c = MachineConfig::new(n);
        c.policy = Policy::RoundRobin;
        c.recovery.load_beacon_period = 0;
        c.threads = threads;
        c
    }

    #[test]
    fn fault_free_run_matches_reference_at_each_thread_count() {
        let w = Workload::fib(10);
        for threads in [1, 2, 4] {
            let r = run_parallel_reactor(cfg(4, threads), &w, &FaultPlan::none());
            assert!(r.completed, "{threads}-thread run stalled");
            assert_eq!(r.result, Some(w.reference_result().unwrap()));
            assert_eq!(r.threads, threads.min(4));
            assert!(r.finish > VirtualTime(0), "waves must charge the clock");
            if threads > 1 {
                assert!(r.msgs_cross_reactor > 0, "work must cross pumps");
            }
        }
    }

    #[test]
    fn fault_free_small_suite_on_two_pumps() {
        for w in Workload::suite_small() {
            let r = run_parallel_reactor(cfg(6, 2), &w, &FaultPlan::none());
            assert!(r.completed, "{}", w.name);
            assert_eq!(r.result, Some(w.reference_result().unwrap()), "{}", w.name);
        }
    }

    #[test]
    fn runs_are_deterministic_despite_real_threads() {
        let w = Workload::quicksort(24, 7);
        let faults = FaultPlan::crash_at(3, VirtualTime(2_500));
        let a = run_parallel_reactor(cfg(5, 2), &w, &faults);
        let b = run_parallel_reactor(cfg(5, 2), &w, &faults);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.msgs_cross_reactor, b.msgs_cross_reactor);
    }

    /// Fault-free completion time, for timing crashes mid-run.
    fn ff_finish(c: &MachineConfig, w: &Workload) -> u64 {
        let r = run_parallel_reactor(c.clone(), w, &FaultPlan::none());
        assert!(r.completed, "{} baseline stalled", w.name);
        r.finish.ticks()
    }

    #[test]
    fn single_crash_splice_recovers_across_pumps() {
        let w = Workload::fib(12);
        let mut c = cfg(4, 2);
        c.recovery.mode = RecoveryMode::Splice;
        let crash = ff_finish(&c, &w) / 3;
        let faults = FaultPlan::crash_at(2, VirtualTime(crash.max(1)));
        let r = run_parallel_reactor(c, &w, &faults);
        assert!(r.completed, "crash run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn single_crash_rollback_recovers_across_pumps() {
        let w = Workload::fib(12);
        let mut c = cfg(4, 2);
        c.recovery.mode = RecoveryMode::Rollback;
        let crash = ff_finish(&c, &w) / 3;
        let faults = FaultPlan::crash_at(1, VirtualTime(crash.max(1)));
        let r = run_parallel_reactor(c, &w, &faults);
        assert!(r.completed, "rollback run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn all_crash_plan_stalls_quickly() {
        let w = Workload::fib(12);
        let c = cfg(4, 2);
        let max_events = c.max_events;
        let crash = VirtualTime((ff_finish(&c, &w) / 3).max(1));
        let mut faults = FaultPlan::none();
        for p in 0..4 {
            faults = faults.and(p, crash, FaultKind::Crash);
        }
        let r = run_parallel_reactor(c, &w, &faults);
        assert!(!r.completed);
        assert!(r.stalled, "all-dead run must be reported as stalled");
        assert_eq!(r.result, None);
        assert!(
            r.events < max_events / 100,
            "stall detected after {} events (budget {max_events})",
            r.events
        );
    }

    #[test]
    fn corrupt_after_crash_is_inert() {
        let w = Workload::fib(12);
        let mut c = cfg(4, 2);
        c.recovery.mode = RecoveryMode::Splice;
        let t = ff_finish(&c, &w);
        let crash_only = FaultPlan::crash_at(2, VirtualTime((t / 3).max(1)));
        let with_corrupt =
            crash_only
                .clone()
                .and(2, VirtualTime((t / 2).max(2)), FaultKind::Corrupt);
        let a = run_parallel_reactor(c.clone(), &w, &crash_only);
        let b = run_parallel_reactor(c, &w, &with_corrupt);
        assert!(a.completed && b.completed);
        assert_eq!(a.result, b.result);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn sharded_and_batched_decorators_compose_on_the_parallel_reactor() {
        let w = Workload::fib(12);
        let mut c = MachineConfig::sharded(2, 2, 200);
        c.policy = Policy::RoundRobin;
        c.batch_window = 150;
        c.recovery.ack_timeout += 4 * c.batch_window;
        c.recovery.load_beacon_period = 0;
        c.threads = 2;
        let r = run_parallel_reactor(c, &w, &FaultPlan::none());
        assert!(r.completed, "sharded+batched parallel run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.shard_msgs_inter > 0, "traffic must cross the router");
        assert!(r.batch_msgs > 0, "traffic must ride the bus");
    }

    #[test]
    fn massacre_of_one_pump_triggers_stealing_into_the_other() {
        // Pump 1's engines (16..32) all die mid-run: every survivor lives
        // on pump 0, whose ready queue swells while pump 1 idles — exactly
        // the imbalance the coordinator's stealing rule exists for.
        let w = Workload::fib(14);
        let mut c = cfg(32, 2);
        c.recovery.mode = RecoveryMode::Splice;
        let crash = VirtualTime((ff_finish(&c, &w) / 3).max(1));
        let mut faults = FaultPlan::none();
        for p in 16..32 {
            faults = faults.and(p, crash, FaultKind::Crash);
        }
        let r = run_parallel_reactor(c, &w, &faults);
        assert!(r.completed, "half-massacre run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.steals > 0, "survivor overload must trigger migration");
    }

    #[test]
    fn detector_disabled_recovery_completes_via_bounces_alone() {
        let w = Workload::fib(12);
        let mut c = cfg(4, 2);
        c.recovery.mode = RecoveryMode::Splice;
        c.detector.broadcast = false;
        let crash = ff_finish(&c, &w) / 3;
        let faults = FaultPlan::crash_at(2, VirtualTime(crash.max(1)));
        let r = run_parallel_reactor(c, &w, &faults);
        assert!(r.completed, "bounce-only parallel recovery stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.bounces > 0, "discovery must have come from bounces");
    }

    #[test]
    fn thousands_of_engines_across_pumps() {
        let w = Workload::fib(12);
        let c = cfg(2_048, 4);
        let r = run_parallel_reactor(c, &w, &FaultPlan::none());
        assert!(r.completed, "2048-engine parallel run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert_eq!(r.n_procs, 2_048);
        assert_eq!(r.threads, 4);
    }

    #[test]
    fn threads_clamp_to_the_engine_count() {
        let w = Workload::fib(8);
        let r = run_parallel_reactor(cfg(2, 16), &w, &FaultPlan::none());
        assert!(r.completed);
        assert_eq!(r.threads, 2, "16 pumps over 2 engines clamps to 2");
    }
}
