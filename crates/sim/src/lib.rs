//! `splice-sim` — the simulated applicative multiprocessor and the
//! experiment harness reproducing the paper's figures.
//!
//! * [`machine`] — N protocol engines over the DES substrate, with fault
//!   injection, failure detection and a reliable super-root;
//! * [`reactor`] — the same engines over the cooperative reactor
//!   substrate: thousands of `DriverLoop`s pumped from a ready queue on
//!   one thread (same `MachineConfig`/`FaultPlan` in, same `RunReport`
//!   out);
//! * [`parallel`] — the multi-core reactor: one pump per core, BSP
//!   virtual-clock rounds, work stealing across pumps — deterministic for
//!   a fixed thread count, verdict/value-par with every other backend;
//! * [`proc`] (unix) — the multi-process shard substrate: shards run as
//!   separate OS processes over Unix domain sockets speaking the
//!   `splice-simnet` wire codec, with reconnect/backoff transport and
//!   *real* fault injection (SIGKILL, partition, delay, garble);
//! * [`cost`] — the execution cost model;
//! * [`report`] — per-run measurements;
//! * [`figure1`] — the paper's Figure 1 scenario, scripted;
//! * [`baseline`] — whole-program-restart and periodic-global-checkpoint
//!   comparison models;
//! * [`experiment`] — the E1–E12 experiment suite (see DESIGN.md) used by
//!   the `experiments` binary and the criterion benches.

#![warn(missing_docs)]

pub mod baseline;
pub mod cost;
pub mod experiment;
pub mod figure1;
pub mod machine;
pub mod parallel;
#[cfg(unix)]
pub mod proc;
pub mod reactor;
pub mod replay;
pub mod report;

pub use cost::CostModel;
pub use machine::{run_workload, Machine, MachineConfig};
pub use parallel::{run_parallel_reactor, ParallelReactorMachine};
#[cfg(unix)]
pub use proc::{parse_workload, run_process, worker_main, ProcConfig};
pub use reactor::{run_reactor, ReactorMachine};
pub use replay::{archived_plan, execute, record, replay, Backend, Recording, Replay};
pub use report::RunReport;
