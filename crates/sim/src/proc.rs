//! The multi-process shard substrate: every shard of the machine runs as
//! a separate OS process (a forked worker binary), exchanging protocol
//! messages over Unix domain sockets in the compact
//! [`splice_simnet::codec`] wire format. The coordinator process hosts the
//! reliable super-root, launches and reaps the workers, executes a
//! [`ProcessFaultPlan`] *for real* — SIGKILL, socket partition, frame
//! delay, frame corruption — and assembles the same [`RunReport`] the
//! in-process backends produce.
//!
//! # Transport
//!
//! Links are per-peer connection state machines. The splice protocol
//! tolerates duplicate delivery (stale-incarnation and duplicate-result
//! drops are part of the paper's scheme) but *not* silent loss: a lost
//! `Result` wedges its parent forever. So the transport is a small ARQ:
//! every data frame a worker writes to a peer is retained for the run's
//! lifetime, a reconnect replays the whole retained sequence, and the
//! receiver deduplicates by per-source sequence number. Connection
//! attempts back off exponentially (with deterministic jitter) up to a
//! reconnect budget, after which the peer is declared dead and everything
//! pending bounces into the engines' `on_send_failed` recovery path —
//! exactly how the DES models a bounced send off a crashed processor.
//!
//! A one-directional partition is implemented as *flush gating*: outbound
//! frames are withheld until the window heals. Under an ARQ transport
//! that is observationally identical to dropping them (a drop would be
//! resent on reconnect anyway) while keeping the injector lossless.

use crate::report::RunReport;
use splice_applicative::{FnId, Workload};
use splice_core::config::{
    CheckpointFilter, Config as RecoveryConfig, RecoveryMode, ReplicaSpec, VoteMode,
};
use splice_core::engine::Timer;
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::policy::{PersistenceTier, PolicyKind, PolicySpec};
use splice_gradient::Policy;
use splice_harness::{
    death_notice_targets, DriverLoop, EngineSnapshot, EngineTotals, ShardMap, ShardRouter,
    Substrate, SuperRootDriver, TimerWheel, TracingSubstrate,
};
use splice_simnet::codec::{
    decode_msg_at, encode_frame, encode_msg, CodecError, Dec, Enc, FrameBuf,
};
use splice_simnet::fault::{ProcFaultKind, ProcessFaultPlan};
use splice_simnet::time::VirtualTime;
use splice_simnet::topology::Topology;
use splice_simnet::trace::{TraceMode, TraceSummary, Tracer};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of a multi-process run: the machine shape plus the
/// transport's timing knobs.
#[derive(Clone, Debug)]
pub struct ProcConfig {
    /// Worker processes (one per shard).
    pub shards: u32,
    /// Protocol engines hosted inside each worker.
    pub per_shard: u32,
    /// Placement policy every engine runs.
    pub policy: Policy,
    /// Recovery configuration shared by all engines.
    pub recovery: RecoveryConfig,
    /// When true, the coordinator broadcasts failure notices the moment a
    /// worker dies (the DES detector's broadcast mode). When false,
    /// workers discover deaths through the transport alone — reconnect
    /// budgets exhaust, pendings bounce — and acked-child probing is
    /// force-enabled, mirroring [`crate::machine::MachineConfig`].
    pub detector_broadcast: bool,
    /// Extra delivery-delay units charged by the in-worker shard router
    /// for cross-shard sends (accounting only; sockets add real latency).
    pub router_latency: u64,
    /// Seed for placers and transport jitter.
    pub seed: u64,
    /// Wall-clock length of one driver time unit.
    pub time_unit: Duration,
    /// Hard wall-clock budget for the whole run.
    pub run_timeout: Duration,
    /// Canonical-trace mode each worker runs.
    pub trace: TraceMode,
    /// Socket write timeout (a peer that blocks writes this long counts
    /// as a failed attempt).
    pub write_timeout: Duration,
    /// First reconnect backoff step (doubles per attempt).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive failed connection attempts after which a peer is
    /// declared dead and its pending traffic bounces.
    pub reconnect_budget: u32,
    /// Explicit worker binary path. When `None`, the
    /// `SPLICE_PROC_WORKER` environment variable is consulted, then a
    /// `splice-proc-worker` binary next to the current executable.
    pub worker_bin: Option<PathBuf>,
}

impl ProcConfig {
    /// A sensible default multi-process machine.
    pub fn new(shards: u32, per_shard: u32) -> ProcConfig {
        ProcConfig {
            shards,
            per_shard,
            policy: Policy::Gradient,
            recovery: RecoveryConfig::default(),
            detector_broadcast: true,
            router_latency: 0,
            seed: 1,
            time_unit: Duration::from_micros(25),
            run_timeout: Duration::from_secs(30),
            trace: TraceMode::Off,
            write_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            reconnect_budget: 8,
            worker_bin: None,
        }
    }

    /// Total processor count.
    pub fn n_procs(&self) -> u32 {
        self.shards * self.per_shard
    }

    /// Resolves the worker binary (see [`ProcConfig::worker_bin`]).
    pub fn worker_bin_path(&self) -> Option<PathBuf> {
        if let Some(p) = &self.worker_bin {
            return Some(p.clone());
        }
        if let Some(p) = std::env::var_os("SPLICE_PROC_WORKER") {
            return Some(PathBuf::from(p));
        }
        let exe = std::env::current_exe().ok()?;
        // Test binaries live in target/<profile>/deps/; the worker bin is
        // one level up, so probe the exe's directory and its parent.
        for dir in [exe.parent(), exe.parent().and_then(Path::parent)]
            .into_iter()
            .flatten()
        {
            let cand = dir.join("splice-proc-worker");
            if cand.is_file() {
                return Some(cand);
            }
        }
        None
    }

    fn engine_recovery(&self) -> RecoveryConfig {
        let mut rec = self.recovery.clone();
        rec.probe_acked |= !self.detector_broadcast;
        rec
    }
}

/// Parses the workload specs the worker understands — exactly the `name`
/// strings of [`Workload`]'s stock constructors: `fib(N)`, `dcsum(LO,HI)`,
/// `binomial(N,K)`, `quicksort(n=LEN,seed=SEED)`.
pub fn parse_workload(spec: &str) -> Option<Workload> {
    let body = spec.strip_suffix(')')?;
    let (name, args) = body.split_once('(')?;
    match name {
        "fib" => Some(Workload::fib(args.trim().parse().ok()?)),
        "dcsum" => {
            let (a, b) = args.split_once(',')?;
            Some(Workload::dcsum(
                a.trim().parse().ok()?,
                b.trim().parse().ok()?,
            ))
        }
        "binomial" => {
            let (a, b) = args.split_once(',')?;
            Some(Workload::binomial(
                a.trim().parse().ok()?,
                b.trim().parse().ok()?,
            ))
        }
        "quicksort" => {
            let (a, b) = args.split_once(',')?;
            let n = a.trim().strip_prefix("n=")?;
            let s = b.trim().strip_prefix("seed=")?;
            Some(Workload::quicksort(n.parse().ok()?, s.parse().ok()?))
        }
        _ => None,
    }
}

fn units_to_wall(nanos_per_unit: u64, units: u64) -> Duration {
    Duration::from_nanos(nanos_per_unit.saturating_mul(units))
}

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_run_dir() -> PathBuf {
    let n = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("splice-proc-{}-{}", std::process::id(), n))
}

fn sock_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard}.sock"))
}

// ---------------------------------------------------------------------------
// Control-plane wire frames
// ---------------------------------------------------------------------------

const T_DATA: u8 = 0;
const T_LINK_HELLO: u8 = 1;
const T_HELLO: u8 = 2;
const T_INIT: u8 = 3;
const T_READY: u8 = 4;
const T_COORDNET: u8 = 5;
const T_NOTICE: u8 = 6;
const T_SHUTDOWN: u8 = 7;
const T_EXIT: u8 = 8;
const T_GARBLE: u8 = 9;
const T_PARTITION: u8 = 10;
const T_DELAY: u8 = 11;
const T_PARTITION_IN: u8 = 12;
const T_NOISE: u8 = 13;

/// Everything that crosses a socket, data plane and control plane alike.
/// Each variant travels inside the standard codec frame envelope.
enum Wire {
    /// Worker → worker protocol message, sequenced per link direction.
    Data {
        seq: u64,
        from: ProcId,
        to: ProcId,
        msg: Msg,
    },
    /// First frame on a worker → worker connection: who is calling.
    LinkHello { from_shard: u32 },
    /// First frame a worker sends the coordinator.
    Hello { shard: u32 },
    /// Coordinator → worker machine configuration.
    Init(Box<Init>),
    /// Worker → coordinator: engines built, listener live.
    Ready { shard: u32 },
    /// Driver-link traffic (super-root ↔ worker), both directions.
    CoordNet { from: ProcId, to: ProcId, msg: Msg },
    /// Coordinator-broadcast failure notice.
    Notice { dead: ProcId },
    /// Graceful drain request.
    Shutdown,
    /// Worker's final counters and engine snapshots.
    Exit(Box<ExitReport>),
    /// Fault injection: corrupt the next data frame toward `peer`.
    Garble { peer: u32 },
    /// Fault injection: gate outbound flushing toward `peer`.
    Partition { peer: u32, for_units: u64 },
    /// Fault injection: delay outbound messages toward `peer`.
    Delay {
        peer: u32,
        extra_units: u64,
        for_units: u64,
    },
    /// Fault injection: whole-host inbound blackout — the receiving
    /// worker closes its listener and drops established peer
    /// connections for the window (asymmetric: its outbound links and
    /// the control plane stay up).
    PartitionIn { for_units: u64 },
    /// Fault injection: byte-level socket noise — outbound data frames
    /// toward `peer` are randomly corrupted for the window.
    Noise { peer: u32, for_units: u64 },
}

/// The machine half a worker cannot derive on its own.
struct Init {
    shards: u32,
    per_shard: u32,
    seed: u64,
    time_unit_nanos: u64,
    router_latency: u64,
    detector_broadcast: bool,
    policy: Policy,
    trace: TraceMode,
    recovery: RecoveryConfig,
    spec: String,
    write_timeout_ms: u64,
    backoff_base_us: u64,
    backoff_cap_us: u64,
    reconnect_budget: u32,
}

/// A worker's parting measurement dump.
#[derive(Clone, Default)]
struct ExitReport {
    shard: u32,
    events: u64,
    delivered: u64,
    dropped_to_dead: u64,
    bounces: u64,
    intra: u64,
    inter: u64,
    frames_sent: u64,
    frames_resent: u64,
    reconnects: u64,
    decode_errors: u64,
    snaps: Vec<EngineSnapshot>,
    trace: TraceSummary,
}

fn encode_policy(e: &mut Enc<'_>, p: Policy) {
    e.u8(match p {
        Policy::Gradient => 0,
        Policy::Random => 1,
        Policy::RoundRobin => 2,
        Policy::LeastLoaded => 3,
    });
}

fn decode_policy(d: &mut Dec<'_>) -> Result<Policy, CodecError> {
    Ok(match d.u8()? {
        0 => Policy::Gradient,
        1 => Policy::Random,
        2 => Policy::RoundRobin,
        3 => Policy::LeastLoaded,
        t => return Err(CodecError::Tag(t)),
    })
}

fn encode_trace_mode(e: &mut Enc<'_>, m: TraceMode) {
    match m {
        TraceMode::Off => {
            e.u8(0);
            e.u64v(0);
        }
        TraceMode::Ring(n) => {
            e.u8(1);
            e.u64v(n as u64);
        }
        TraceMode::Full => {
            e.u8(2);
            e.u64v(0);
        }
        TraceMode::Checksum => {
            e.u8(3);
            e.u64v(0);
        }
    }
}

fn decode_trace_mode(d: &mut Dec<'_>) -> Result<TraceMode, CodecError> {
    let tag = d.u8()?;
    let param = d.u64v()?;
    Ok(match tag {
        0 => TraceMode::Off,
        1 => TraceMode::Ring(param as usize),
        2 => TraceMode::Full,
        3 => TraceMode::Checksum,
        t => return Err(CodecError::Tag(t)),
    })
}

fn encode_recovery(e: &mut Enc<'_>, r: &RecoveryConfig) {
    e.u8(match r.mode {
        RecoveryMode::None => 0,
        RecoveryMode::Rollback => 1,
        RecoveryMode::Splice => 2,
    });
    e.u64v(r.ancestor_depth as u64);
    e.u8(match r.ckpt_filter {
        CheckpointFilter::Topmost => 0,
        CheckpointFilter::All => 1,
    });
    e.u64v(r.ack_timeout);
    e.u64v(r.load_beacon_period);
    e.u64v(r.splice_grace);
    e.u8(u8::from(r.gossip_notices));
    e.u8(u8::from(r.probe_acked));
    e.u32v(r.root_replicas);
    e.u8(r.policy.kind.tag());
    e.u8(r.policy.tier.tag());
    e.u32v(r.policy.recheckpoint_every);
    let mut reps: Vec<(u32, &ReplicaSpec)> = r.replicate.iter().map(|(f, s)| (f.0, s)).collect();
    reps.sort_by_key(|(f, _)| *f);
    e.u64v(reps.len() as u64);
    for (fnid, spec) in reps {
        e.u32v(fnid);
        e.u32v(spec.n);
        e.u8(match spec.vote {
            VoteMode::Majority => 0,
            VoteMode::WaitAll => 1,
        });
    }
}

fn decode_recovery(d: &mut Dec<'_>) -> Result<RecoveryConfig, CodecError> {
    let mode = match d.u8()? {
        0 => RecoveryMode::None,
        1 => RecoveryMode::Rollback,
        2 => RecoveryMode::Splice,
        t => return Err(CodecError::Tag(t)),
    };
    let ancestor_depth = d.u64v()? as usize;
    let ckpt_filter = match d.u8()? {
        0 => CheckpointFilter::Topmost,
        1 => CheckpointFilter::All,
        t => return Err(CodecError::Tag(t)),
    };
    let ack_timeout = d.u64v()?;
    let load_beacon_period = d.u64v()?;
    let splice_grace = d.u64v()?;
    let gossip_notices = d.u8()? != 0;
    let probe_acked = d.u8()? != 0;
    let root_replicas = d.u32v()?;
    let kind_tag = d.u8()?;
    let kind = PolicyKind::from_tag(kind_tag).ok_or(CodecError::Tag(kind_tag))?;
    let tier_tag = d.u8()?;
    let tier = PersistenceTier::from_tag(tier_tag).ok_or(CodecError::Tag(tier_tag))?;
    let recheckpoint_every = d.u32v()?;
    let n = d.u64v()?;
    let mut replicate = std::collections::HashMap::new();
    for _ in 0..n {
        let fnid = FnId(d.u32v()?);
        let reps = d.u32v()?;
        let vote = match d.u8()? {
            0 => VoteMode::Majority,
            1 => VoteMode::WaitAll,
            t => return Err(CodecError::Tag(t)),
        };
        replicate.insert(fnid, ReplicaSpec { n: reps, vote });
    }
    Ok(RecoveryConfig {
        mode,
        ancestor_depth,
        ckpt_filter,
        replicate,
        ack_timeout,
        load_beacon_period,
        splice_grace,
        gossip_notices,
        probe_acked,
        root_replicas,
        policy: PolicySpec {
            kind,
            tier,
            recheckpoint_every,
        },
    })
}

fn encode_snapshot(e: &mut Enc<'_>, s: &EngineSnapshot) {
    let st = &s.stats;
    e.u64v(st.tasks_created);
    e.u64v(st.tasks_completed);
    e.u64v(st.waves_run);
    e.u64v(st.work_units);
    for v in st.msgs_sent {
        e.u64v(v);
    }
    for v in st.msgs_recv {
        e.u64v(v);
    }
    e.u64v(st.bytes_sent);
    e.u64v(st.spawns_emitted);
    e.u64v(st.reissues);
    e.u64v(st.ack_timeouts);
    e.u64v(st.step_parents_created);
    e.u64v(st.salvaged_results);
    e.u64v(st.salvage_before_spawn);
    e.u64v(st.salvage_after_spawn);
    e.u64v(st.salvage_forwarded);
    e.u64v(st.salvage_dropped);
    e.u64v(st.stranded_orphans);
    e.u64v(st.aborts_sent);
    e.u64v(st.tasks_aborted);
    e.u64v(st.orphans_suicided);
    e.u64v(st.duplicate_results_ignored);
    e.u64v(st.stale_messages_ignored);
    e.u64v(st.votes_decided);
    e.u64v(st.votes_conflicted);
    e.u64v(st.votes_dissenting);
    e.u64v(st.replica_results);
    e.u64v(st.eval_errors);
    e.u64v(st.lazy_rebuilds);
    e.u64v(st.recheckpoints);
    e.u64v(s.ckpt_peak_entries as u64);
    e.u64v(s.ckpt_peak_bytes as u64);
    e.u64v(s.ckpt_stored);
}

fn decode_snapshot(d: &mut Dec<'_>) -> Result<EngineSnapshot, CodecError> {
    let mut s = EngineSnapshot::default();
    let st = &mut s.stats;
    st.tasks_created = d.u64v()?;
    st.tasks_completed = d.u64v()?;
    st.waves_run = d.u64v()?;
    st.work_units = d.u64v()?;
    for v in st.msgs_sent.iter_mut() {
        *v = d.u64v()?;
    }
    for v in st.msgs_recv.iter_mut() {
        *v = d.u64v()?;
    }
    st.bytes_sent = d.u64v()?;
    st.spawns_emitted = d.u64v()?;
    st.reissues = d.u64v()?;
    st.ack_timeouts = d.u64v()?;
    st.step_parents_created = d.u64v()?;
    st.salvaged_results = d.u64v()?;
    st.salvage_before_spawn = d.u64v()?;
    st.salvage_after_spawn = d.u64v()?;
    st.salvage_forwarded = d.u64v()?;
    st.salvage_dropped = d.u64v()?;
    st.stranded_orphans = d.u64v()?;
    st.aborts_sent = d.u64v()?;
    st.tasks_aborted = d.u64v()?;
    st.orphans_suicided = d.u64v()?;
    st.duplicate_results_ignored = d.u64v()?;
    st.stale_messages_ignored = d.u64v()?;
    st.votes_decided = d.u64v()?;
    st.votes_conflicted = d.u64v()?;
    st.votes_dissenting = d.u64v()?;
    st.replica_results = d.u64v()?;
    st.eval_errors = d.u64v()?;
    st.lazy_rebuilds = d.u64v()?;
    st.recheckpoints = d.u64v()?;
    s.ckpt_peak_entries = d.u64v()? as usize;
    s.ckpt_peak_bytes = d.u64v()? as usize;
    s.ckpt_stored = d.u64v()?;
    Ok(s)
}

fn encode_wire(w: &Wire, out: &mut Vec<u8>) {
    let mut e = Enc::new(out);
    match w {
        Wire::Data { seq, from, to, msg } => {
            e.u8(T_DATA);
            e.u64v(*seq);
            e.proc(*from);
            e.proc(*to);
            encode_msg(msg, out);
        }
        Wire::LinkHello { from_shard } => {
            e.u8(T_LINK_HELLO);
            e.u32v(*from_shard);
        }
        Wire::Hello { shard } => {
            e.u8(T_HELLO);
            e.u32v(*shard);
        }
        Wire::Init(i) => {
            e.u8(T_INIT);
            e.u32v(i.shards);
            e.u32v(i.per_shard);
            e.u64v(i.seed);
            e.u64v(i.time_unit_nanos);
            e.u64v(i.router_latency);
            e.u8(u8::from(i.detector_broadcast));
            encode_policy(&mut e, i.policy);
            encode_trace_mode(&mut e, i.trace);
            encode_recovery(&mut e, &i.recovery);
            e.str(&i.spec);
            e.u64v(i.write_timeout_ms);
            e.u64v(i.backoff_base_us);
            e.u64v(i.backoff_cap_us);
            e.u32v(i.reconnect_budget);
        }
        Wire::Ready { shard } => {
            e.u8(T_READY);
            e.u32v(*shard);
        }
        Wire::CoordNet { from, to, msg } => {
            e.u8(T_COORDNET);
            e.proc(*from);
            e.proc(*to);
            encode_msg(msg, out);
        }
        Wire::Notice { dead } => {
            e.u8(T_NOTICE);
            e.proc(*dead);
        }
        Wire::Shutdown => e.u8(T_SHUTDOWN),
        Wire::Exit(r) => {
            e.u8(T_EXIT);
            e.u32v(r.shard);
            e.u64v(r.events);
            e.u64v(r.delivered);
            e.u64v(r.dropped_to_dead);
            e.u64v(r.bounces);
            e.u64v(r.intra);
            e.u64v(r.inter);
            e.u64v(r.frames_sent);
            e.u64v(r.frames_resent);
            e.u64v(r.reconnects);
            e.u64v(r.decode_errors);
            e.u64v(r.snaps.len() as u64);
            for s in &r.snaps {
                encode_snapshot(&mut e, s);
            }
            e.u64v(r.trace.events);
            e.u64v(r.trace.dropped);
            e.u64v(r.trace.stream);
            e.u64v(r.trace.semantic);
        }
        Wire::Garble { peer } => {
            e.u8(T_GARBLE);
            e.u32v(*peer);
        }
        Wire::Partition { peer, for_units } => {
            e.u8(T_PARTITION);
            e.u32v(*peer);
            e.u64v(*for_units);
        }
        Wire::Delay {
            peer,
            extra_units,
            for_units,
        } => {
            e.u8(T_DELAY);
            e.u32v(*peer);
            e.u64v(*extra_units);
            e.u64v(*for_units);
        }
        Wire::PartitionIn { for_units } => {
            e.u8(T_PARTITION_IN);
            e.u64v(*for_units);
        }
        Wire::Noise { peer, for_units } => {
            e.u8(T_NOISE);
            e.u32v(*peer);
            e.u64v(*for_units);
        }
    }
}

fn decode_wire(body: &[u8]) -> Result<Wire, CodecError> {
    let mut d = Dec::new(body);
    let w = match d.u8()? {
        T_DATA => {
            let seq = d.u64v()?;
            let from = d.proc()?;
            let to = d.proc()?;
            let msg = decode_msg_at(&mut d)?;
            Wire::Data { seq, from, to, msg }
        }
        T_LINK_HELLO => Wire::LinkHello {
            from_shard: d.u32v()?,
        },
        T_HELLO => Wire::Hello { shard: d.u32v()? },
        T_INIT => {
            let shards = d.u32v()?;
            let per_shard = d.u32v()?;
            let seed = d.u64v()?;
            let time_unit_nanos = d.u64v()?;
            let router_latency = d.u64v()?;
            let detector_broadcast = d.u8()? != 0;
            let policy = decode_policy(&mut d)?;
            let trace = decode_trace_mode(&mut d)?;
            let recovery = decode_recovery(&mut d)?;
            let spec = d.str()?;
            let write_timeout_ms = d.u64v()?;
            let backoff_base_us = d.u64v()?;
            let backoff_cap_us = d.u64v()?;
            let reconnect_budget = d.u32v()?;
            Wire::Init(Box::new(Init {
                shards,
                per_shard,
                seed,
                time_unit_nanos,
                router_latency,
                detector_broadcast,
                policy,
                trace,
                recovery,
                spec,
                write_timeout_ms,
                backoff_base_us,
                backoff_cap_us,
                reconnect_budget,
            }))
        }
        T_READY => Wire::Ready { shard: d.u32v()? },
        T_COORDNET => {
            let from = d.proc()?;
            let to = d.proc()?;
            let msg = decode_msg_at(&mut d)?;
            Wire::CoordNet { from, to, msg }
        }
        T_NOTICE => Wire::Notice { dead: d.proc()? },
        T_SHUTDOWN => Wire::Shutdown,
        T_EXIT => {
            let shard = d.u32v()?;
            let events = d.u64v()?;
            let delivered = d.u64v()?;
            let dropped_to_dead = d.u64v()?;
            let bounces = d.u64v()?;
            let intra = d.u64v()?;
            let inter = d.u64v()?;
            let frames_sent = d.u64v()?;
            let frames_resent = d.u64v()?;
            let reconnects = d.u64v()?;
            let decode_errors = d.u64v()?;
            let n = d.u64v()?;
            let mut snaps = Vec::new();
            for _ in 0..n {
                snaps.push(decode_snapshot(&mut d)?);
            }
            let trace = TraceSummary {
                events: d.u64v()?,
                dropped: d.u64v()?,
                stream: d.u64v()?,
                semantic: d.u64v()?,
            };
            Wire::Exit(Box::new(ExitReport {
                shard,
                events,
                delivered,
                dropped_to_dead,
                bounces,
                intra,
                inter,
                frames_sent,
                frames_resent,
                reconnects,
                decode_errors,
                snaps,
                trace,
            }))
        }
        T_GARBLE => Wire::Garble { peer: d.u32v()? },
        T_PARTITION => {
            let peer = d.u32v()?;
            let for_units = d.u64v()?;
            Wire::Partition { peer, for_units }
        }
        T_DELAY => {
            let peer = d.u32v()?;
            let extra_units = d.u64v()?;
            let for_units = d.u64v()?;
            Wire::Delay {
                peer,
                extra_units,
                for_units,
            }
        }
        T_PARTITION_IN => Wire::PartitionIn {
            for_units: d.u64v()?,
        },
        T_NOISE => {
            let peer = d.u32v()?;
            let for_units = d.u64v()?;
            Wire::Noise { peer, for_units }
        }
        t => return Err(CodecError::Tag(t)),
    };
    if d.remaining() != 0 {
        return Err(CodecError::Trailing);
    }
    Ok(w)
}

/// Frames `w` and writes it in one blocking `write_all`.
fn write_wire(
    stream: &mut UnixStream,
    w: &Wire,
    scratch: &mut (Vec<u8>, Vec<u8>),
) -> io::Result<()> {
    scratch.0.clear();
    encode_wire(w, &mut scratch.0);
    scratch.1.clear();
    encode_frame(&scratch.0, &mut scratch.1);
    stream.write_all(&scratch.1)
}

/// Drains everything currently readable from a nonblocking stream into a
/// reassembly buffer. `Ok(true)` means the peer closed the stream.
fn pump_read(stream: &mut UnixStream, fb: &mut FrameBuf) -> io::Result<bool> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(true),
            Ok(n) => fb.extend(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Transport (worker side)
// ---------------------------------------------------------------------------

/// One protocol message queued for a remote shard.
struct OutMsg {
    from: ProcId,
    to: ProcId,
    msg: Msg,
    /// Delay-fault gate: hold the message until this instant.
    not_before: Option<Instant>,
}

/// Per-peer connection state machine.
struct Peer {
    shard: u32,
    path: PathBuf,
    stream: Option<UnixStream>,
    pending: VecDeque<OutMsg>,
    /// Every data frame ever written on this link, clean-encoded, indexed
    /// by sequence number. Replayed wholesale on reconnect; the receiver
    /// deduplicates. Retained for the run's lifetime — runs are short and
    /// the frames are the protocol's own traffic, so this is the simplest
    /// correct ARQ.
    sent: Vec<Vec<u8>>,
    attempts: u32,
    next_attempt: Instant,
    /// True once any connection attempt has been made; later attempts
    /// count as reconnects.
    tried: bool,
    dead: bool,
    garble_next: bool,
    block_until: Option<Instant>,
    /// `(window_end, extra_units)` of an active delay fault.
    delay: Option<(Instant, u64)>,
    /// Byte-level noise fault: until this instant, outbound data frames
    /// are randomly corrupted (the clean copy is still retained for
    /// replay, so the link recovers losslessly).
    noise_until: Option<Instant>,
}

/// All of a worker's outbound links plus the shared counters.
struct Transport {
    peers: Vec<Option<Peer>>,
    me: u32,
    nanos: u64,
    write_timeout: Duration,
    backoff_base_us: u64,
    backoff_cap_us: u64,
    budget: u32,
    rng: u64,
    frames_sent: u64,
    frames_resent: u64,
    reconnects: u64,
    scratch: Vec<u8>,
    frame: Vec<u8>,
}

impl Transport {
    fn new(dir: &Path, me: u32, shards: u32, nanos: u64, init: &Init, seed: u64) -> Transport {
        let now = Instant::now();
        let peers = (0..shards)
            .map(|k| {
                (k != me).then(|| Peer {
                    shard: k,
                    path: sock_path(dir, k),
                    stream: None,
                    pending: VecDeque::new(),
                    sent: Vec::new(),
                    attempts: 0,
                    next_attempt: now,
                    tried: false,
                    dead: false,
                    garble_next: false,
                    block_until: None,
                    delay: None,
                    noise_until: None,
                })
            })
            .collect();
        Transport {
            peers,
            me,
            nanos,
            write_timeout: Duration::from_millis(init.write_timeout_ms.max(1)),
            backoff_base_us: init.backoff_base_us.max(1),
            backoff_cap_us: init.backoff_cap_us.max(1),
            budget: init.reconnect_budget.max(1),
            rng: seed ^ 0x9e37_79b9_7f4a_7c15 ^ u64::from(me) << 32 | 1,
            frames_sent: 0,
            frames_resent: 0,
            reconnects: 0,
            scratch: Vec::new(),
            frame: Vec::new(),
        }
    }

    fn next_jitter(&mut self, bound_us: u64) -> u64 {
        // xorshift64: deterministic per (seed, shard) jitter.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        if bound_us == 0 {
            0
        } else {
            x % bound_us
        }
    }

    fn backoff(&mut self, attempts: u32) -> Duration {
        let us = self
            .backoff_base_us
            .saturating_mul(1u64 << attempts.min(16))
            .min(self.backoff_cap_us);
        let jitter = self.next_jitter(us / 4 + 1);
        Duration::from_micros(us + jitter)
    }

    /// Queues a message for `shard`. Returns the message back when the
    /// peer is already declared dead (the caller bounces it).
    fn enqueue(
        &mut self,
        shard: u32,
        from: ProcId,
        to: ProcId,
        msg: Msg,
        now: Instant,
    ) -> Option<(ProcId, ProcId, Msg)> {
        let nanos = self.nanos;
        let Some(peer) = self.peers[shard as usize].as_mut() else {
            return Some((from, to, msg));
        };
        if peer.dead {
            return Some((from, to, msg));
        }
        let not_before = peer
            .delay
            .and_then(|(end, extra)| (now < end).then(|| now + units_to_wall(nanos, extra)));
        peer.pending.push_back(OutMsg {
            from,
            to,
            msg,
            not_before,
        });
        None
    }

    /// Declares `shard` dead from the outside (coordinator notice),
    /// returning the pending traffic for bouncing.
    fn kill_peer(&mut self, shard: u32) -> Vec<OutMsg> {
        match self.peers[shard as usize].as_mut() {
            Some(peer) if !peer.dead => {
                peer.dead = true;
                peer.stream = None;
                peer.sent.clear();
                peer.pending.drain(..).collect()
            }
            _ => Vec::new(),
        }
    }

    fn peer_flag(&mut self, shard: u32) -> Option<&mut Peer> {
        self.peers.get_mut(shard as usize)?.as_mut()
    }

    /// Pushes queued traffic onto sockets, reconnecting as needed.
    /// Returns peers that exhausted their reconnect budget this call,
    /// with the traffic that must now bounce.
    fn flush(&mut self, now: Instant) -> Vec<(u32, Vec<OutMsg>)> {
        let mut died = Vec::new();
        for i in 0..self.peers.len() {
            let Some(mut peer) = self.peers[i].take() else {
                continue;
            };
            self.flush_peer(&mut peer, now, &mut died);
            self.peers[i] = Some(peer);
        }
        died
    }

    fn flush_peer(&mut self, peer: &mut Peer, now: Instant, died: &mut Vec<(u32, Vec<OutMsg>)>) {
        if peer.dead {
            return;
        }
        if peer.block_until.is_some_and(|t| now < t) {
            return;
        }
        if let Some(s) = peer.stream.as_mut() {
            // Links are one-directional — the receiver never writes — so
            // the only readable state this socket can reach is EOF/reset:
            // the receiver rejected a frame and dropped the connection.
            // Probe for that even when idle; without this, a corrupted
            // *final* frame on a link that then goes quiet is lost forever
            // (the retained clean copy only replays on reconnect, and the
            // sender would otherwise only notice on its next write).
            let mut probe = [0u8; 16];
            let gone = s.set_nonblocking(true).is_err()
                || match s.read(&mut probe) {
                    // EOF, or bytes the protocol never sends: resync via
                    // reconnect either way (the receiver dedups the replay).
                    Ok(_) => true,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => false,
                    Err(_) => true,
                };
            if !gone {
                let _ = s.set_nonblocking(false);
            }
            if gone {
                peer.stream = None;
                peer.next_attempt = now;
            }
        }
        let wants = !peer.pending.is_empty() || (peer.stream.is_none() && !peer.sent.is_empty());
        if !wants {
            return;
        }
        if peer.stream.is_none() {
            if now < peer.next_attempt {
                return;
            }
            if peer.tried {
                self.reconnects += 1;
            }
            peer.tried = true;
            match UnixStream::connect(&peer.path) {
                Ok(s) => {
                    let _ = s.set_write_timeout(Some(self.write_timeout));
                    let mut s = s;
                    let me = self.me;
                    let hello_ok = {
                        self.scratch.clear();
                        encode_wire(&Wire::LinkHello { from_shard: me }, &mut self.scratch);
                        self.frame.clear();
                        encode_frame(&self.scratch, &mut self.frame);
                        s.write_all(&self.frame).is_ok()
                    };
                    if !hello_ok {
                        peer.next_attempt = now;
                        return;
                    }
                    self.frames_sent += 1;
                    // Replay the whole retained sequence; the receiver's
                    // per-source sequence dedup skips what it already has.
                    let mut replay_ok = true;
                    for f in &peer.sent {
                        if s.write_all(f).is_ok() {
                            self.frames_sent += 1;
                            self.frames_resent += 1;
                        } else {
                            replay_ok = false;
                            break;
                        }
                    }
                    if !replay_ok {
                        peer.next_attempt = now;
                        return;
                    }
                    peer.attempts = 0;
                    peer.stream = Some(s);
                }
                Err(_) => {
                    peer.attempts += 1;
                    if peer.attempts >= self.budget {
                        peer.dead = true;
                        peer.sent.clear();
                        let drained: Vec<OutMsg> = peer.pending.drain(..).collect();
                        died.push((peer.shard, drained));
                        return;
                    }
                    peer.next_attempt = now + self.backoff(peer.attempts);
                    return;
                }
            }
        }
        loop {
            let due = match peer.pending.front() {
                None => break,
                Some(m) => m.not_before.is_none_or(|t| now >= t),
            };
            if !due {
                break;
            }
            let head = peer.pending.front().expect("checked nonempty");
            let seq = peer.sent.len() as u64;
            self.scratch.clear();
            {
                let mut e = Enc::new(&mut self.scratch);
                e.u8(T_DATA);
                e.u64v(seq);
                e.proc(head.from);
                e.proc(head.to);
            }
            encode_msg(&head.msg, &mut self.scratch);
            self.frame.clear();
            encode_frame(&self.scratch, &mut self.frame);
            let noisy = peer.noise_until.is_some_and(|t| now < t);
            let wire_bytes = if peer.garble_next {
                peer.garble_next = false;
                // Flip one body byte after the checksum was computed: the
                // length word survives (stream framing stays parseable) but
                // the receiver's checksum rejects the frame.
                let mut g = self.frame.clone();
                g[5] ^= 0x5a;
                g
            } else if noisy && self.next_jitter(2) == 0 {
                // Active noise window: corrupt roughly every other frame at
                // a random body position past the length word. Same recovery
                // path as garble — checksum reject, connection drop, clean
                // replay from `sent`.
                let mut g = self.frame.clone();
                let span = (g.len() as u64).saturating_sub(5).max(1);
                let idx = (5 + self.next_jitter(span) as usize).min(g.len() - 1);
                g[idx] ^= 0xa5;
                g
            } else {
                self.frame.clone()
            };
            let stream = peer.stream.as_mut().expect("connected above");
            match stream.write_all(&wire_bytes) {
                Ok(()) => {
                    self.frames_sent += 1;
                    peer.sent.push(std::mem::take(&mut self.frame));
                    peer.pending.pop_front();
                }
                Err(_) => {
                    // Broken mid-write: reconnect-and-replay recovers the
                    // (possibly partial) frame; the head stays queued only
                    // if it was never retained.
                    peer.stream = None;
                    peer.next_attempt = now;
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Everything the worker substrate needs mutable access to.
struct WorkerCore {
    me: u32,
    shards: u32,
    per_shard: u32,
    nanos: u64,
    epoch: Instant,
    dead: Vec<bool>,
    inbox: VecDeque<(ProcId, Msg)>,
    bounces: VecDeque<(ProcId, ProcId, Msg)>,
    timers: TimerWheel<Instant, (ProcId, Timer)>,
    transport: Transport,
    coord: UnixStream,
    coord_down: bool,
    scratch: (Vec<u8>, Vec<u8>),
    /// Next expected data sequence number per source shard. Survives
    /// connection drops — that is the whole point of the dedup.
    expected_seq: Vec<u64>,
    dropped_to_dead: u64,
    decode_errors: u64,
    /// End of an active inbound-partition window: while set, the worker
    /// refuses inbound peer traffic (listener down, peer links severed).
    partition_in_until: Option<Instant>,
}

impl WorkerCore {
    fn now_units(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / u128::from(self.nanos.max(1))) as u64
    }

    fn send_coord(&mut self, w: &Wire) {
        if self.coord_down {
            return;
        }
        if write_wire(&mut self.coord, w, &mut self.scratch).is_err() {
            self.coord_down = true;
        }
    }

    fn shard_of(&self, p: ProcId) -> u32 {
        p.0 / self.per_shard.max(1)
    }

    fn route(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        if to.is_super_root() {
            self.send_coord(&Wire::CoordNet { from, to, msg });
            return;
        }
        if self.dead[to.0 as usize] {
            // Mirror the DES bounce rule: live senders get their message
            // back through on_send_failed; super-root sends are silently
            // dropped.
            if from.is_super_root() {
                self.dropped_to_dead += 1;
            } else {
                self.bounces.push_back((from, to, msg));
            }
            return;
        }
        let shard = self.shard_of(to);
        if shard == self.me {
            self.inbox.push_back((to, msg));
            return;
        }
        if let Some((f, t, m)) = self.transport.enqueue(shard, from, to, msg, Instant::now()) {
            if f.is_super_root() {
                self.dropped_to_dead += 1;
            } else {
                self.bounces.push_back((f, t, m));
            }
        }
    }

    /// Fans a death observation out to the canonical notice targets:
    /// local engines via the inbox, remote shards via the transport, the
    /// super-root via the driver link.
    fn announce_death(&mut self, dead: ProcId) {
        let n = self.shards * self.per_shard;
        let targets = death_notice_targets(n, |p| !self.dead[p.0 as usize], dead);
        for t in targets {
            if t.is_super_root() {
                self.send_coord(&Wire::CoordNet {
                    from: dead,
                    to: ProcId::SUPER_ROOT,
                    msg: Msg::FailureNotice { dead },
                });
            } else if self.shard_of(t) == self.me {
                self.inbox.push_back((t, Msg::FailureNotice { dead }));
            } else {
                let _ = self.transport.enqueue(
                    self.shard_of(t),
                    dead,
                    t,
                    Msg::FailureNotice { dead },
                    Instant::now(),
                );
            }
        }
    }

    /// Marks every processor of `shard` dead; returns the procs newly
    /// marked.
    fn mark_shard_dead(&mut self, shard: u32) -> Vec<ProcId> {
        let mut newly = Vec::new();
        for j in 0..self.per_shard {
            let p = ProcId(shard * self.per_shard + j);
            if !self.dead[p.0 as usize] {
                self.dead[p.0 as usize] = true;
                newly.push(p);
            }
        }
        newly
    }
}

/// The innermost worker substrate: real sockets, real clocks.
struct WireSub<'a> {
    core: &'a mut WorkerCore,
}

impl Substrate for WireSub<'_> {
    fn n_procs(&self) -> u32 {
        self.core.shards * self.core.per_shard
    }

    fn is_live(&self, p: ProcId) -> bool {
        !self.core.dead[p.0 as usize]
    }

    fn now_units(&self) -> u64 {
        self.core.now_units()
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        self.core.route(from, to, msg);
    }

    // send_delayed keeps the trait default: real time already passes on
    // the socket, like the threaded runtime.

    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64) {
        let at = Instant::now() + units_to_wall(self.core.nanos, delay);
        self.core.timers.arm(at, (owner, timer));
    }

    fn report_death(&mut self, dead: ProcId) {
        self.core.announce_death(dead);
    }
}

/// One accepted inbound connection (a peer worker or the coordinator).
struct InConn {
    stream: UnixStream,
    fb: FrameBuf,
    src: Option<u32>,
    is_coord: bool,
}

/// The worker process body: binds its shard socket, handshakes with the
/// coordinator, hosts `per_shard` protocol engines, and pumps messages,
/// timers, waves and the transport until told to shut down. Returns the
/// process exit code (`0` = clean).
pub fn worker_main(dir: &Path, shard: u32) -> i32 {
    let start = Instant::now();
    let listener = match UnixListener::bind(sock_path(dir, shard)) {
        Ok(l) => l,
        Err(_) => return 2,
    };
    if listener.set_nonblocking(true).is_err() {
        return 2;
    }
    // Connect the driver link. The coordinator binds its socket before
    // spawning workers, so a short retry loop is cosmetic.
    let mut coord = loop {
        match UnixStream::connect(dir.join("coord.sock")) {
            Ok(s) => break s,
            Err(_) if start.elapsed() < Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return 2,
        }
    };
    let _ = coord.set_write_timeout(Some(Duration::from_secs(2)));
    let mut scratch = (Vec::new(), Vec::new());
    if write_wire(&mut coord, &Wire::Hello { shard }, &mut scratch).is_err() {
        return 2;
    }

    // Handshake: wait for Init, buffering any early peer data frames.
    let mut conns: Vec<InConn> = Vec::new();
    let mut pre_data: Vec<(u32, u64, ProcId, Msg)> = Vec::new();
    let mut init: Option<Box<Init>> = None;
    while init.is_none() {
        if start.elapsed() > Duration::from_secs(10) {
            return 2;
        }
        accept_conns(&listener, &mut conns);
        let mut any = false;
        let mut drop_idx: Vec<usize> = Vec::new();
        for (ci, conn) in conns.iter_mut().enumerate() {
            loop {
                match conn.fb.next_frame() {
                    Ok(Some(body)) => {
                        any = true;
                        match decode_wire(&body) {
                            Ok(Wire::Init(i)) => {
                                conn.is_coord = true;
                                init = Some(i);
                            }
                            Ok(Wire::LinkHello { from_shard }) => conn.src = Some(from_shard),
                            Ok(Wire::Data { seq, to, msg, .. }) => {
                                if let Some(s) = conn.src {
                                    pre_data.push((s, seq, to, msg));
                                }
                            }
                            _ => {}
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        drop_idx.push(ci);
                        break;
                    }
                }
            }
            match pump_read(&mut conn.stream, &mut conn.fb) {
                Ok(false) => {}
                Ok(true) | Err(_) => {
                    if !conn.is_coord && conn.fb.pending() == 0 {
                        drop_idx.push(ci);
                    }
                }
            }
        }
        for ci in drop_idx.into_iter().rev() {
            conns.remove(ci);
        }
        if !any {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let init = init.expect("loop exits with init");
    let Some(workload) = parse_workload(&init.spec) else {
        return 2;
    };

    // Build the machine half.
    let shards = init.shards;
    let per_shard = init.per_shard;
    let nanos = init.time_unit_nanos.max(1);
    let n = shards * per_shard;
    let topology = Topology::Sharded {
        shards,
        inner: Box::new(Topology::Complete { n: per_shard }),
    };
    let program = Arc::new(workload.program.clone());
    let mut nodes: Vec<DriverLoop> = (0..per_shard)
        .map(|j| {
            let id = ProcId(shard * per_shard + j);
            DriverLoop::new(
                id,
                program.clone(),
                init.recovery.clone(),
                init.policy.build(id, &topology, init.seed),
            )
        })
        .collect();
    let mut tracer = Tracer::new(init.trace);
    let mut core = WorkerCore {
        me: shard,
        shards,
        per_shard,
        nanos,
        epoch: Instant::now(),
        dead: vec![false; n as usize],
        inbox: VecDeque::new(),
        bounces: VecDeque::new(),
        timers: TimerWheel::new(),
        transport: Transport::new(dir, shard, shards, nanos, &init, init.seed),
        coord,
        coord_down: false,
        scratch,
        expected_seq: vec![0; shards as usize],
        dropped_to_dead: 0,
        decode_errors: 0,
        partition_in_until: None,
    };
    // Replay pre-init data frames through the ordinary dedup path.
    for (src, seq, to, msg) in pre_data {
        let exp = &mut core.expected_seq[src as usize];
        if seq < *exp {
            continue;
        }
        if seq > *exp {
            core.decode_errors += 1;
            continue;
        }
        *exp += 1;
        if core.shard_of(to) == shard {
            core.inbox.push_back((to, msg));
        }
    }
    let mut events: u64 = 0;
    let mut delivered: u64 = 0;
    let mut bounce_count: u64 = 0;
    let mut intra: u64 = 0;
    let mut inter: u64 = 0;
    {
        let mut sub = worker_stack(&mut core, &mut tracer, init.router_latency);
        for node in nodes.iter_mut() {
            node.start(&mut sub);
        }
        let s = sub.stats();
        intra += s.intra_msgs;
        inter += s.inter_msgs;
    }
    core.send_coord(&Wire::Ready { shard });

    // Main loop.
    let mut listener = Some(listener);
    let mut shutdown = false;
    loop {
        if start.elapsed() > Duration::from_secs(600) {
            return 3;
        }
        // Asymmetric inbound blackout (PartitionIn): while the window is
        // open this shard refuses new connections — the socket file is
        // gone, so peers burn reconnect budget — and severs established
        // peer links below. The coordinator link and every outbound link
        // stay up: the shard turns into a zombie that still computes and
        // sends but hears nothing from its peers.
        match core.partition_in_until {
            Some(until) if Instant::now() < until => {
                listener = None;
                let _ = std::fs::remove_file(sock_path(dir, shard));
            }
            Some(_) => {
                core.partition_in_until = None;
                listener = UnixListener::bind(sock_path(dir, shard))
                    .ok()
                    .filter(|l| l.set_nonblocking(true).is_ok());
            }
            None => {}
        }
        let dark = core.partition_in_until.is_some();
        if let Some(l) = &listener {
            accept_conns(l, &mut conns);
        }
        let mut progressed = false;
        let mut coord_eof = false;
        let mut drop_idx: Vec<usize> = Vec::new();
        for (ci, conn) in conns.iter_mut().enumerate() {
            if dark && !conn.is_coord {
                drop_idx.push(ci);
                continue;
            }
            let eof = pump_read(&mut conn.stream, &mut conn.fb).unwrap_or(true);
            loop {
                match conn.fb.next_frame() {
                    Ok(Some(body)) => {
                        progressed = true;
                        match decode_wire(&body) {
                            Ok(w) => {
                                if handle_worker_frame(&mut core, conn, w, &mut shutdown) {
                                    drop_idx.push(ci);
                                    break;
                                }
                            }
                            Err(_) => {
                                core.decode_errors += 1;
                                drop_idx.push(ci);
                                break;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        core.decode_errors += 1;
                        drop_idx.push(ci);
                        break;
                    }
                }
            }
            if eof && conn.fb.pending() == 0 {
                if conn.is_coord {
                    coord_eof = true;
                } else {
                    drop_idx.push(ci);
                }
            }
        }
        drop_idx.sort_unstable();
        drop_idx.dedup();
        for ci in drop_idx.into_iter().rev() {
            conns.remove(ci);
        }
        if coord_eof || core.coord_down {
            // The coordinator vanished: nothing to report to, just stop.
            return 0;
        }
        if shutdown {
            break;
        }

        // Timers, deliveries, bounces, waves — all through one transient
        // decorator stack per iteration.
        let now = Instant::now();
        let mut due: Vec<(ProcId, Timer)> = Vec::new();
        while let Some(t) = core.timers.pop_due(&now) {
            due.push(t);
        }
        let mut msgs: Vec<(ProcId, Msg)> = Vec::new();
        for _ in 0..64 {
            match core.inbox.pop_front() {
                Some(m) => msgs.push(m),
                None => break,
            }
        }
        let bns: Vec<(ProcId, ProcId, Msg)> = core.bounces.drain(..).collect();
        {
            let mut sub = worker_stack(&mut core, &mut tracer, init.router_latency);
            for (owner, timer) in due {
                let idx = (owner.0 % per_shard) as usize;
                nodes[idx].on_timer(timer, &mut sub);
                events += 1;
                progressed = true;
            }
            for (to, msg) in msgs {
                let idx = (to.0 % per_shard) as usize;
                nodes[idx].on_message(msg, &mut sub);
                events += 1;
                delivered += 1;
                progressed = true;
            }
            for (sender, dead_to, msg) in bns {
                let idx = (sender.0 % per_shard) as usize;
                nodes[idx].on_send_failed(dead_to, msg, &mut sub);
                events += 1;
                bounce_count += 1;
                progressed = true;
            }
            for _ in 0..16 {
                let mut any = false;
                for node in nodes.iter_mut() {
                    if node.run_ready_wave(&mut sub) {
                        any = true;
                        events += 1;
                    }
                }
                if !any {
                    break;
                }
                progressed = true;
            }
            let s = sub.stats();
            intra += s.intra_msgs;
            inter += s.inter_msgs;
        }

        // Push outbound traffic; handle transport-discovered deaths.
        for (dead_shard, pendings) in core.transport.flush(Instant::now()) {
            let newly = core.mark_shard_dead(dead_shard);
            for m in pendings {
                if m.from.is_super_root() {
                    core.dropped_to_dead += 1;
                } else {
                    core.bounces.push_back((m.from, m.to, m.msg));
                }
            }
            for p in newly {
                core.announce_death(p);
            }
            progressed = true;
        }

        if !progressed && core.inbox.is_empty() && core.bounces.is_empty() {
            let mut nap = Duration::from_micros(200);
            if let Some(at) = core.timers.next_deadline() {
                let until = at.saturating_duration_since(Instant::now());
                nap = nap.min(until.max(Duration::from_micros(10)));
            }
            std::thread::sleep(nap);
        }
    }

    // Graceful drain: snapshot the engines and report out.
    let snaps: Vec<EngineSnapshot> = nodes
        .iter()
        .map(|d| EngineSnapshot::of(d.engine()))
        .collect();
    let rep = ExitReport {
        shard,
        events,
        delivered,
        dropped_to_dead: core.dropped_to_dead,
        bounces: bounce_count,
        intra,
        inter,
        frames_sent: core.transport.frames_sent,
        frames_resent: core.transport.frames_resent,
        reconnects: core.transport.reconnects,
        decode_errors: core.decode_errors,
        snaps,
        trace: tracer.summary(),
    };
    core.send_coord(&Wire::Exit(Box::new(rep)));
    0
}

type WorkerStack<'a> = ShardRouter<TracingSubstrate<WireSub<'a>, &'a mut Tracer>>;

fn worker_stack<'a>(
    core: &'a mut WorkerCore,
    tracer: &'a mut Tracer,
    router_latency: u64,
) -> WorkerStack<'a> {
    let map = ShardMap::new(core.shards, core.per_shard);
    ShardRouter::new(
        TracingSubstrate::new(WireSub { core }, tracer),
        map,
        router_latency,
    )
}

fn accept_conns(listener: &UnixListener, conns: &mut Vec<InConn>) {
    while let Ok((stream, _)) = listener.accept() {
        let _ = stream.set_nonblocking(true);
        conns.push(InConn {
            stream,
            fb: FrameBuf::new(),
            src: None,
            is_coord: false,
        });
    }
}

/// Applies one decoded frame to the worker. Returns true when the
/// connection it arrived on must be dropped.
fn handle_worker_frame(
    core: &mut WorkerCore,
    conn: &mut InConn,
    w: Wire,
    shutdown: &mut bool,
) -> bool {
    match w {
        Wire::Data { seq, to, msg, .. } => {
            let Some(src) = conn.src else {
                // Data before LinkHello: protocol violation.
                core.decode_errors += 1;
                return true;
            };
            let exp = &mut core.expected_seq[src as usize];
            if seq < *exp {
                return false; // replayed duplicate
            }
            if seq > *exp {
                // A sequence gap means the retained-replay invariant broke.
                core.decode_errors += 1;
                return true;
            }
            *exp += 1;
            if core.shard_of(to) == core.me {
                core.inbox.push_back((to, msg));
            }
            false
        }
        Wire::LinkHello { from_shard } => {
            conn.src = Some(from_shard);
            false
        }
        Wire::CoordNet { to, msg, .. } => {
            conn.is_coord = true;
            if core.shard_of(to) == core.me && !to.is_super_root() {
                core.inbox.push_back((to, msg));
            }
            false
        }
        Wire::Notice { dead } => {
            conn.is_coord = true;
            if !core.dead[dead.0 as usize] {
                core.dead[dead.0 as usize] = true;
                for j in 0..core.per_shard {
                    let p = ProcId(core.me * core.per_shard + j);
                    core.inbox.push_back((p, Msg::FailureNotice { dead }));
                }
                let dead_shard = core.shard_of(dead);
                if dead_shard != core.me {
                    let whole = (0..core.per_shard)
                        .all(|j| core.dead[(dead_shard * core.per_shard + j) as usize]);
                    if whole {
                        for m in core.transport.kill_peer(dead_shard) {
                            if m.from.is_super_root() {
                                core.dropped_to_dead += 1;
                            } else {
                                core.bounces.push_back((m.from, m.to, m.msg));
                            }
                        }
                    }
                }
            }
            false
        }
        Wire::Shutdown => {
            conn.is_coord = true;
            *shutdown = true;
            false
        }
        Wire::Garble { peer } => {
            conn.is_coord = true;
            if let Some(p) = core.transport.peer_flag(peer) {
                p.garble_next = true;
            }
            false
        }
        Wire::Partition { peer, for_units } => {
            conn.is_coord = true;
            let wall = units_to_wall(core.nanos, for_units);
            if let Some(p) = core.transport.peer_flag(peer) {
                p.block_until = Some(Instant::now() + wall);
            }
            false
        }
        Wire::Delay {
            peer,
            extra_units,
            for_units,
        } => {
            conn.is_coord = true;
            let wall = units_to_wall(core.nanos, for_units);
            if let Some(p) = core.transport.peer_flag(peer) {
                p.delay = Some((Instant::now() + wall, extra_units));
            }
            false
        }
        Wire::PartitionIn { for_units } => {
            conn.is_coord = true;
            let wall = units_to_wall(core.nanos, for_units);
            core.partition_in_until = Some(Instant::now() + wall);
            false
        }
        Wire::Noise { peer, for_units } => {
            conn.is_coord = true;
            let wall = units_to_wall(core.nanos, for_units);
            if let Some(p) = core.transport.peer_flag(peer) {
                p.noise_until = Some(Instant::now() + wall);
            }
            false
        }
        // Init is consumed during the handshake; the rest are
        // coordinator-bound frames a worker never receives.
        Wire::Init(_) | Wire::Hello { .. } | Wire::Ready { .. } | Wire::Exit(_) => false,
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

struct CoordState {
    ctrl: Vec<Option<UnixStream>>,
    shard_dead: Vec<bool>,
    /// Per-processor deaths the coordinator has learned of — either by
    /// observing a worker exit, or by gossip (FailureNotices from peers
    /// that exhausted their reconnect budget against a partitioned host).
    /// Once every processor of a shard is believed dead, the root
    /// replicas hosted there are deposed even if the worker process
    /// itself is still running (a partitioned zombie).
    proc_dead: Vec<bool>,
    shards: u32,
    per_shard: u32,
    nanos: u64,
    epoch: Instant,
    timers: TimerWheel<Instant, Timer>,
    failed: Vec<u32>,
    dropped_to_dead: u64,
    scratch: (Vec<u8>, Vec<u8>),
}

impl CoordState {
    fn notify(&mut self, k: u32, w: &Wire) {
        if self.shard_dead[k as usize] {
            return;
        }
        let mut broke = false;
        if let Some(s) = self.ctrl[k as usize].as_mut() {
            if write_wire(s, w, &mut self.scratch).is_err() {
                broke = true;
            }
        }
        if broke {
            self.failed.push(k);
        }
    }
}

/// The super-root's substrate: the reliable driver link, carried over the
/// coordinator's control connections.
struct CoordSub<'a> {
    st: &'a mut CoordState,
}

impl Substrate for CoordSub<'_> {
    fn n_procs(&self) -> u32 {
        self.st.shards * self.st.per_shard
    }

    fn is_live(&self, p: ProcId) -> bool {
        !self.st.shard_dead[(p.0 / self.st.per_shard.max(1)) as usize]
            && !self.st.proc_dead[p.0 as usize]
    }

    fn now_units(&self) -> u64 {
        (self.st.epoch.elapsed().as_nanos() / u128::from(self.st.nanos.max(1))) as u64
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        let k = to.0 / self.st.per_shard.max(1);
        if self.st.shard_dead[k as usize] || self.st.ctrl[k as usize].is_none() {
            self.st.dropped_to_dead += 1;
            return;
        }
        self.st.notify(k, &Wire::CoordNet { from, to, msg });
    }

    fn arm_timer(&mut self, _owner: ProcId, timer: Timer, delay: u64) {
        let at = Instant::now() + units_to_wall(self.st.nanos, delay);
        self.st.timers.arm(at, timer);
    }

    fn report_death(&mut self, _dead: ProcId) {
        // The coordinator is the detector; nothing to tell itself.
    }
}

fn on_shard_death(
    st: &mut CoordState,
    children: &mut [Option<Child>],
    sr: &mut SuperRootDriver,
    k: u32,
    broadcast: bool,
) {
    if st.shard_dead[k as usize] {
        return;
    }
    st.shard_dead[k as usize] = true;
    st.ctrl[k as usize] = None;
    for j in 0..st.per_shard {
        st.proc_dead[(k * st.per_shard + j) as usize] = true;
    }
    crash_root_replicas_of(st, sr, k);
    if let Some(mut ch) = children[k as usize].take() {
        let _ = ch.kill();
        let _ = ch.wait();
    }
    if broadcast {
        for j in 0..st.per_shard {
            let p = ProcId(k * st.per_shard + j);
            {
                let mut sub = CoordSub { st };
                sr.on_failure(p, &mut sub);
            }
            for other in 0..st.shards {
                if other != k {
                    st.notify(other, &Wire::Notice { dead: p });
                }
            }
        }
    }
    // With broadcast off the death stays silent: workers discover it
    // through exhausted reconnect budgets, and the super-root through the
    // FailureNotices those discoveries gossip up the driver link.
}

/// Deposes every root replica hosted by shard `k` — replica rank `r`
/// lives on shard `r % shards` — letting the quorum's next-ranked live
/// replica take over and reissue the root wave.
fn crash_root_replicas_of(st: &mut CoordState, sr: &mut SuperRootDriver, k: u32) {
    for r in 0..sr.replicas() {
        if r % st.shards.max(1) == k && sr.replica_live(r) {
            let mut sub = CoordSub { st };
            sr.crash_replica(r, &mut sub);
        }
    }
}

/// Records a gossiped processor death. When that completes a whole
/// shard, the shard's root replicas are deposed even though its worker
/// process may still be alive (an inbound-partitioned zombie: the
/// cluster has durably excommunicated it, so the root role must move).
fn note_proc_death(st: &mut CoordState, sr: &mut SuperRootDriver, dead: ProcId) {
    let i = dead.0 as usize;
    if i >= st.proc_dead.len() || st.proc_dead[i] {
        return;
    }
    st.proc_dead[i] = true;
    let k = dead.0 / st.per_shard.max(1);
    let whole = (0..st.per_shard).all(|j| st.proc_dead[(k * st.per_shard + j) as usize]);
    if whole {
        crash_root_replicas_of(st, sr, k);
    }
}

/// Runs `workload` on a machine of `cfg.shards` worker processes,
/// executing `plan` against them for real. Returns the assembled
/// [`RunReport`] (fields the process backend cannot measure — batching,
/// reactor hops — are zero).
pub fn run_process(
    cfg: &ProcConfig,
    workload: &Workload,
    plan: &ProcessFaultPlan,
) -> io::Result<RunReport> {
    if parse_workload(&workload.name).is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "workload spec {:?} is not parseable by workers",
                workload.name
            ),
        ));
    }
    let bin = cfg.worker_bin_path().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "worker binary not found (set ProcConfig::worker_bin or SPLICE_PROC_WORKER)",
        )
    })?;
    let dir = fresh_run_dir();
    std::fs::create_dir_all(&dir)?;
    let result = run_process_in(cfg, workload, plan, &bin, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_process_in(
    cfg: &ProcConfig,
    workload: &Workload,
    plan: &ProcessFaultPlan,
    bin: &Path,
    dir: &Path,
) -> io::Result<RunReport> {
    let shards = cfg.shards.max(1);
    let per_shard = cfg.per_shard.max(1);
    let nanos = cfg.time_unit.as_nanos().max(1) as u64;
    let listener = UnixListener::bind(dir.join("coord.sock"))?;
    listener.set_nonblocking(true)?;
    let mut children: Vec<Option<Child>> = Vec::new();
    for k in 0..shards {
        let child = Command::new(bin)
            .arg(dir)
            .arg(k.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn();
        match child {
            Ok(c) => children.push(Some(c)),
            Err(e) => {
                for c in children.iter_mut().flatten() {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        }
    }
    let recovery = cfg.engine_recovery();
    let mut sr = SuperRootDriver::new(workload, &recovery);
    let mut st = CoordState {
        ctrl: (0..shards).map(|_| None).collect(),
        shard_dead: vec![false; shards as usize],
        proc_dead: vec![false; (shards * per_shard) as usize],
        shards,
        per_shard,
        nanos,
        epoch: Instant::now(),
        timers: TimerWheel::new(),
        failed: Vec::new(),
        dropped_to_dead: 0,
        scratch: (Vec::new(), Vec::new()),
    };
    let init_template = Init {
        shards,
        per_shard,
        seed: cfg.seed,
        time_unit_nanos: nanos,
        router_latency: cfg.router_latency,
        detector_broadcast: cfg.detector_broadcast,
        policy: cfg.policy,
        trace: cfg.trace,
        recovery: recovery.clone(),
        spec: workload.name.clone(),
        write_timeout_ms: cfg.write_timeout.as_millis().max(1) as u64,
        backoff_base_us: cfg.backoff_base.as_micros().max(1) as u64,
        backoff_cap_us: cfg.backoff_cap.as_micros().max(1) as u64,
        reconnect_budget: cfg.reconnect_budget,
    };
    let mut w2c: Vec<InConn> = Vec::new();
    let mut ready = vec![false; shards as usize];
    let mut launched = false;
    let mut launch_at = Instant::now();
    let mut exits: Vec<Option<ExitReport>> = vec![None; shards as usize];
    let plan_events = plan.sorted();
    let mut cursor = 0usize;
    let mut finish_units: Option<u64> = None;
    let mut stalled = false;
    let mut all_dead_since: Option<Instant> = None;
    let deadline = st.epoch + cfg.run_timeout;

    loop {
        accept_conns(&listener, &mut w2c);
        let mut progressed = false;
        let mut drop_idx: Vec<usize> = Vec::new();
        for (ci, conn) in w2c.iter_mut().enumerate() {
            let eof = matches!(pump_read(&mut conn.stream, &mut conn.fb), Ok(true) | Err(_));
            loop {
                match conn.fb.next_frame() {
                    Ok(Some(body)) => {
                        progressed = true;
                        match decode_wire(&body) {
                            Ok(Wire::Hello { shard }) if shard < shards => {
                                conn.src = Some(shard);
                                // The worker binds its listener before
                                // saying hello; connect the control link
                                // and configure it.
                                let mut ctrl = None;
                                for _ in 0..200 {
                                    match UnixStream::connect(sock_path(dir, shard)) {
                                        Ok(s) => {
                                            ctrl = Some(s);
                                            break;
                                        }
                                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                                    }
                                }
                                if let Some(mut s) = ctrl {
                                    let _ = s.set_write_timeout(Some(cfg.write_timeout));
                                    let init = Init {
                                        spec: init_template.spec.clone(),
                                        recovery: init_template.recovery.clone(),
                                        ..init_template
                                    };
                                    if write_wire(
                                        &mut s,
                                        &Wire::Init(Box::new(init)),
                                        &mut st.scratch,
                                    )
                                    .is_ok()
                                    {
                                        st.ctrl[shard as usize] = Some(s);
                                    } else {
                                        st.failed.push(shard);
                                    }
                                } else {
                                    st.failed.push(shard);
                                }
                            }
                            Ok(Wire::Ready { shard }) if shard < shards => {
                                ready[shard as usize] = true;
                            }
                            Ok(Wire::CoordNet { to, msg, .. }) if to.is_super_root() => match msg {
                                Msg::FailureNotice { dead } => {
                                    {
                                        let mut sub = CoordSub { st: &mut st };
                                        sr.on_failure(dead, &mut sub);
                                    }
                                    note_proc_death(&mut st, &mut sr, dead);
                                }
                                m => {
                                    let mut sub = CoordSub { st: &mut st };
                                    sr.on_message(m, &mut sub);
                                }
                            },
                            Ok(Wire::Exit(rep)) => {
                                let k = rep.shard as usize;
                                if k < exits.len() {
                                    exits[k] = Some(*rep);
                                }
                            }
                            Ok(_) => {}
                            Err(_) => {
                                drop_idx.push(ci);
                                break;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        drop_idx.push(ci);
                        break;
                    }
                }
            }
            if eof && conn.fb.pending() == 0 {
                drop_idx.push(ci);
            }
        }
        drop_idx.sort_unstable();
        drop_idx.dedup();
        for ci in drop_idx.into_iter().rev() {
            w2c.remove(ci);
        }

        if !launched && ready.iter().all(|r| *r) {
            let mut sub = CoordSub { st: &mut st };
            sr.launch(&mut sub);
            launched = true;
            launch_at = Instant::now();
        }

        // Super-root timers.
        let now = Instant::now();
        let mut due: Vec<Timer> = Vec::new();
        while let Some(t) = st.timers.pop_due(&now) {
            due.push(t);
        }
        for t in due {
            let mut sub = CoordSub { st: &mut st };
            sr.on_timer(t, &mut sub);
            progressed = true;
        }

        // Unexpected worker exits are crashes.
        for k in 0..shards {
            let crashed = match children[k as usize].as_mut() {
                Some(ch) => matches!(ch.try_wait(), Ok(Some(_))),
                None => false,
            };
            if crashed && !st.shard_dead[k as usize] {
                on_shard_death(&mut st, &mut children, &mut sr, k, cfg.detector_broadcast);
                progressed = true;
            }
        }

        // Scheduled plan events, measured from launch.
        while launched && cursor < plan_events.len() {
            let ev = plan_events[cursor];
            if now < launch_at + units_to_wall(nanos, ev.at.ticks()) {
                break;
            }
            cursor += 1;
            progressed = true;
            match ev.kind {
                ProcFaultKind::Kill => {
                    on_shard_death(
                        &mut st,
                        &mut children,
                        &mut sr,
                        ev.shard,
                        cfg.detector_broadcast,
                    );
                }
                ProcFaultKind::PartitionOut { peer, for_units } => {
                    st.notify(ev.shard, &Wire::Partition { peer, for_units });
                }
                ProcFaultKind::DelayOut {
                    peer,
                    extra_units,
                    for_units,
                } => {
                    st.notify(
                        ev.shard,
                        &Wire::Delay {
                            peer,
                            extra_units,
                            for_units,
                        },
                    );
                }
                ProcFaultKind::GarbleNext { peer } => {
                    st.notify(ev.shard, &Wire::Garble { peer });
                }
                ProcFaultKind::PartitionIn { for_units } => {
                    st.notify(ev.shard, &Wire::PartitionIn { for_units });
                }
                ProcFaultKind::NoiseOut { peer, for_units } => {
                    st.notify(ev.shard, &Wire::Noise { peer, for_units });
                }
            }
        }

        // Control links that broke mid-write mean the worker died.
        while let Some(k) = st.failed.pop() {
            on_shard_death(&mut st, &mut children, &mut sr, k, cfg.detector_broadcast);
            progressed = true;
        }

        if sr.result().is_some() {
            finish_units = Some((st.epoch.elapsed().as_nanos() / u128::from(nanos)) as u64);
            break;
        }
        // Every root replica deposed: the quorum is gone and no successor
        // can reissue — the run stalls by construction, so stop now.
        if launched && !sr.has_live_replica() {
            stalled = true;
            break;
        }
        if launched && st.shard_dead.iter().all(|d| *d) {
            let since = *all_dead_since.get_or_insert(now);
            if now.duration_since(since) > Duration::from_millis(300) {
                stalled = true;
                break;
            }
        } else {
            all_dead_since = None;
        }
        if Instant::now() > deadline {
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    // Teardown: drain live workers gracefully, then reap everything.
    let completed = sr.result().is_some();
    for k in 0..shards {
        st.notify(k, &Wire::Shutdown);
    }
    let drain_deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < drain_deadline
        && exits
            .iter()
            .zip(&st.shard_dead)
            .any(|(e, d)| e.is_none() && !d)
    {
        accept_conns(&listener, &mut w2c);
        let mut drop_idx: Vec<usize> = Vec::new();
        for (ci, conn) in w2c.iter_mut().enumerate() {
            let eof = matches!(pump_read(&mut conn.stream, &mut conn.fb), Ok(true) | Err(_));
            loop {
                match conn.fb.next_frame() {
                    Ok(Some(body)) => {
                        if let Ok(Wire::Exit(rep)) = decode_wire(&body) {
                            let k = rep.shard as usize;
                            if k < exits.len() {
                                exits[k] = Some(*rep);
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        drop_idx.push(ci);
                        break;
                    }
                }
            }
            if eof && conn.fb.pending() == 0 {
                drop_idx.push(ci);
            }
        }
        drop_idx.sort_unstable();
        drop_idx.dedup();
        for ci in drop_idx.into_iter().rev() {
            w2c.remove(ci);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for c in children.iter_mut().flatten() {
        let _ = c.kill();
        let _ = c.wait();
    }

    // Assemble the report.
    let end_units = (st.epoch.elapsed().as_nanos() / u128::from(nanos)) as u64;
    let mut snaps: Vec<EngineSnapshot> = Vec::with_capacity((shards * per_shard) as usize);
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut dropped = st.dropped_to_dead;
    let mut bounces = 0u64;
    let mut intra = 0u64;
    let mut inter = 0u64;
    let mut frames_sent = 0u64;
    let mut frames_resent = 0u64;
    let mut reconnects = 0u64;
    let mut decode_errors = 0u64;
    let mut trace = TraceSummary::default();
    for exit in exits.iter().take(shards as usize) {
        match exit {
            Some(r) => {
                events += r.events;
                delivered += r.delivered;
                dropped += r.dropped_to_dead;
                bounces += r.bounces;
                intra += r.intra;
                inter += r.inter;
                frames_sent += r.frames_sent;
                frames_resent += r.frames_resent;
                reconnects += r.reconnects;
                decode_errors += r.decode_errors;
                trace.absorb(r.trace);
                if r.snaps.len() == per_shard as usize {
                    snaps.extend(r.snaps.iter().cloned());
                } else {
                    snaps.extend((0..per_shard).map(|_| EngineSnapshot::default()));
                }
            }
            // A killed worker reports nothing: its measurements died with
            // it, exactly like a crashed processor's would.
            None => snaps.extend((0..per_shard).map(|_| EngineSnapshot::default())),
        }
    }
    let totals = EngineTotals::collect(snaps);
    Ok(RunReport {
        result: sr.result().cloned(),
        completed,
        stalled,
        finish: VirtualTime(finish_units.unwrap_or(end_units)),
        events,
        delivered,
        dropped_to_dead: dropped,
        bounces,
        stats: totals.stats,
        per_proc: totals.per_proc,
        ckpt_peak_entries: totals.ckpt_peak_entries,
        ckpt_peak_bytes: totals.ckpt_peak_bytes,
        ckpt_stored: totals.ckpt_stored,
        root_reissues: sr.reissues(),
        root_failovers: sr.failovers(),
        root_replicas: sr.replicas(),
        state_samples: Vec::new(),
        spawn_log: Vec::new(),
        n_procs: shards * per_shard,
        shards,
        shard_msgs_intra: intra,
        shard_msgs_inter: inter,
        batch_envelopes: 0,
        batch_msgs: 0,
        faults: plan.events.len(),
        threads: shards,
        msgs_cross_reactor: 0,
        steals: 0,
        frames_sent,
        frames_resent,
        reconnects,
        decode_errors,
        trace,
        policy: cfg.recovery.policy.kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::stats::ProcStats;

    #[test]
    fn proc_stats_layout_tripwire() {
        // The exit-report codec spells out every ProcStats field by name;
        // a new field would silently vanish from worker reports without
        // this size pin (45 u64-equivalent fields).
        assert_eq!(std::mem::size_of::<ProcStats>(), 45 * 8);
    }

    #[test]
    fn exit_report_round_trips() {
        let mut snap = EngineSnapshot::default();
        snap.stats.tasks_completed = 7;
        snap.stats.msgs_sent[2] = 11;
        snap.stats.msgs_recv[6] = 3;
        snap.stats.eval_errors = 1;
        snap.ckpt_peak_entries = 9;
        snap.ckpt_peak_bytes = 1024;
        snap.ckpt_stored = 40;
        let rep = ExitReport {
            shard: 3,
            events: 100,
            delivered: 50,
            dropped_to_dead: 2,
            bounces: 4,
            intra: 30,
            inter: 20,
            frames_sent: 25,
            frames_resent: 5,
            reconnects: 2,
            decode_errors: 1,
            snaps: vec![snap.clone(), EngineSnapshot::default()],
            trace: TraceSummary {
                events: 12,
                dropped: 1,
                stream: 0xdead,
                semantic: 0xbeef,
            },
        };
        let mut body = Vec::new();
        encode_wire(&Wire::Exit(Box::new(rep)), &mut body);
        let Wire::Exit(back) = decode_wire(&body).expect("decodes") else {
            panic!("wrong variant");
        };
        assert_eq!(back.shard, 3);
        assert_eq!(back.frames_resent, 5);
        assert_eq!(back.snaps.len(), 2);
        assert_eq!(back.snaps[0].stats.tasks_completed, 7);
        assert_eq!(back.snaps[0].stats.msgs_sent[2], 11);
        assert_eq!(back.snaps[0].stats.msgs_recv[6], 3);
        assert_eq!(back.snaps[0].ckpt_peak_bytes, 1024);
        assert_eq!(back.trace.semantic, 0xbeef);
    }

    #[test]
    fn init_round_trips_with_replication() {
        let mut recovery = RecoveryConfig::default();
        recovery.replicate.insert(
            FnId(4),
            ReplicaSpec {
                n: 3,
                vote: VoteMode::Majority,
            },
        );
        recovery.replicate.insert(
            FnId(1),
            ReplicaSpec {
                n: 5,
                vote: VoteMode::WaitAll,
            },
        );
        let init = Init {
            shards: 4,
            per_shard: 2,
            seed: 42,
            time_unit_nanos: 25_000,
            router_latency: 7,
            detector_broadcast: false,
            policy: Policy::LeastLoaded,
            trace: TraceMode::Ring(128),
            recovery,
            spec: "fib(16)".into(),
            write_timeout_ms: 2_000,
            backoff_base_us: 1_000,
            backoff_cap_us: 100_000,
            reconnect_budget: 8,
        };
        let mut body = Vec::new();
        encode_wire(&Wire::Init(Box::new(init)), &mut body);
        let Wire::Init(back) = decode_wire(&body).expect("decodes") else {
            panic!("wrong variant");
        };
        assert_eq!(back.shards, 4);
        assert_eq!(back.policy, Policy::LeastLoaded);
        assert_eq!(back.trace, TraceMode::Ring(128));
        assert!(!back.detector_broadcast);
        assert_eq!(back.recovery.replicate.len(), 2);
        assert_eq!(back.recovery.replicate[&FnId(1)].n, 5);
        assert_eq!(back.spec, "fib(16)");
    }

    #[test]
    fn parse_workload_accepts_stock_specs() {
        for w in [
            Workload::fib(9),
            Workload::dcsum(0, 500),
            Workload::binomial(10, 3),
            Workload::quicksort(32, 7),
        ] {
            let parsed = parse_workload(&w.name).expect(&w.name);
            assert_eq!(parsed.name, w.name);
            assert_eq!(parsed.reference_result(), w.reference_result());
        }
        assert!(parse_workload("mystery(3)").is_none());
        assert!(parse_workload("fib").is_none());
    }

    #[test]
    fn data_frames_round_trip_and_reject_trailing() {
        let msg = Msg::FailureNotice { dead: ProcId(3) };
        let w = Wire::Data {
            seq: 9,
            from: ProcId(1),
            to: ProcId(5),
            msg,
        };
        let mut body = Vec::new();
        encode_wire(&w, &mut body);
        let Wire::Data { seq, from, to, msg } = decode_wire(&body).expect("decodes") else {
            panic!("wrong variant");
        };
        assert_eq!((seq, from, to), (9, ProcId(1), ProcId(5)));
        assert!(matches!(msg, Msg::FailureNotice { dead: ProcId(3) }));
        body.push(0);
        assert!(matches!(decode_wire(&body), Err(CodecError::Trailing)));
    }
}
