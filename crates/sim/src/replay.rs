//! Record → replay verification, and the archived-reproducer registry.
//!
//! A deterministic backend's run is a pure function of `(config,
//! workload, plan)`, and the canonical trace layer makes that claim
//! *checkable*: [`record`] executes a run with full tracing and captures
//! the typed event stream next to the [`RunReport`]; [`replay`] re-executes
//! the same inputs on the same backend and cross-checks both — the first
//! divergent trace event (if any) is pinpointed by
//! [`first_divergence`], and the report is compared field for field. A
//! healthy backend replays bit-identically; anything else is a determinism
//! bug with a named first symptom.
//!
//! The module also keeps [`archived_plan`]: fault plans that once exposed
//! real bugs, pinned by name so CI can replay and re-shrink them forever
//! (`tests/trace_replay.rs` runs them; the `splice-trace` bin exposes them
//! on the command line).

use crate::machine::{Machine, MachineConfig};
use crate::parallel::ParallelReactorMachine;
use crate::reactor::ReactorMachine;
use crate::report::RunReport;
use splice_applicative::Workload;
use splice_simnet::fault::{FaultKind, FaultPlan};
use splice_simnet::time::VirtualTime;
use splice_simnet::trace::{first_divergence, Divergence, TraceEvent, TraceMode};
use std::fmt;

/// The deterministic front-ends a recording can come from. The threaded
/// runtime is deliberately absent: its event order derives from the wall
/// clock, so only its commutative semantic checksum is comparable — there
/// is no stream to replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The discrete-event simulator (`Machine`).
    Des,
    /// The single-thread cooperative reactor (`ReactorMachine`).
    Reactor,
    /// The multi-pump reactor (`ParallelReactorMachine`).
    ParallelReactor,
    /// The multi-process machine (`proc::run_process`): one OS process
    /// per shard over Unix domain sockets. Wall-clock driven, so it is
    /// *not* in [`Backend::ALL`] and cannot be recorded or replayed —
    /// only its verdict, value and commutative semantic checksum are
    /// comparable across runs.
    Process,
}

impl Backend {
    /// Every deterministic backend, in canonical order. The process
    /// backend is deliberately absent: no stream to replay.
    pub const ALL: [Backend; 3] = [Backend::Des, Backend::Reactor, Backend::ParallelReactor];

    /// Stable command-line name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Des => "des",
            Backend::Reactor => "reactor",
            Backend::ParallelReactor => "parallel",
            Backend::Process => "process",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.name() == s)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded run: the inputs that produced it and everything it
/// produced — enough to re-execute and compare.
pub struct Recording {
    /// The front-end that ran.
    pub backend: Backend,
    /// The exact configuration (trace mode forced to [`TraceMode::Full`]).
    pub cfg: MachineConfig,
    /// The workload.
    pub workload: Workload,
    /// The fault plan.
    pub plan: FaultPlan,
    /// The canonical event stream, in emission order.
    pub events: Vec<TraceEvent>,
    /// The run's report.
    pub report: RunReport,
}

/// Executes `(backend, cfg, workload, plan)` and returns the report plus
/// whatever trace events the configured mode retained.
///
/// [`Backend::Process`] launches real worker processes: the plan must map
/// onto whole shards ([`ProcessFaultPlan::from_plan`] is the arbiter —
/// partial-shard crashes and corrupt events panic here), the returned
/// event list is always empty (only the report's semantic checksum is
/// comparable), and the workload name must be one of the stock specs.
///
/// [`ProcessFaultPlan::from_plan`]: splice_simnet::fault::ProcessFaultPlan::from_plan
pub fn execute(
    backend: Backend,
    cfg: MachineConfig,
    workload: &Workload,
    plan: &FaultPlan,
) -> (RunReport, Vec<TraceEvent>) {
    match backend {
        Backend::Des => Machine::new(cfg, workload).run_traced(plan),
        Backend::Reactor => ReactorMachine::new(cfg, workload).run_traced(plan),
        Backend::ParallelReactor => ParallelReactorMachine::new(cfg, workload).run_traced(plan),
        #[cfg(unix)]
        Backend::Process => {
            let shards = cfg.topology.shard_count().max(1);
            let per_shard = cfg.topology.per_shard().max(1);
            let proc_plan =
                splice_simnet::fault::ProcessFaultPlan::from_plan(plan, shards, per_shard)
                    .expect("fault plan does not map onto whole shards");
            let mut pc = crate::proc::ProcConfig::new(shards, per_shard);
            pc.policy = cfg.policy;
            pc.recovery = cfg.recovery.clone();
            pc.detector_broadcast = cfg.detector.broadcast;
            pc.router_latency = cfg.router_latency;
            pc.seed = cfg.seed;
            pc.trace = cfg.trace;
            let report = crate::proc::run_process(&pc, workload, &proc_plan)
                .expect("process backend failed to launch");
            (report, Vec::new())
        }
        #[cfg(not(unix))]
        Backend::Process => panic!("the process backend requires a unix host"),
    }
}

/// Runs `(backend, cfg, workload, plan)` with full tracing and captures
/// the result as a [`Recording`].
pub fn record(
    backend: Backend,
    mut cfg: MachineConfig,
    workload: &Workload,
    plan: &FaultPlan,
) -> Recording {
    cfg.trace = TraceMode::Full;
    let (report, events) = execute(backend, cfg.clone(), workload, plan);
    Recording {
        backend,
        cfg,
        workload: workload.clone(),
        plan: plan.clone(),
        events,
        report,
    }
}

/// What replaying a [`Recording`] found.
pub struct Replay {
    /// First place the fresh event stream disagrees with the recording
    /// (`None` = traces identical).
    pub divergence: Option<Divergence>,
    /// True when the fresh [`RunReport`] equals the recorded one, field
    /// for field.
    pub report_matches: bool,
    /// The fresh report, for inspection when it does not match.
    pub fresh: RunReport,
}

impl Replay {
    /// True when the run reproduced bit-identically: no trace divergence
    /// and an equal report.
    pub fn bit_identical(&self) -> bool {
        self.divergence.is_none() && self.report_matches
    }
}

/// Re-executes a recording's inputs on its backend and cross-checks the
/// trace stream and the report.
pub fn replay(rec: &Recording) -> Replay {
    let (fresh, events) = execute(rec.backend, rec.cfg.clone(), &rec.workload, &rec.plan);
    Replay {
        divergence: first_divergence(&rec.events, &events),
        report_matches: fresh == rec.report,
        fresh,
    }
}

/// Archived fault plans that once exposed real bugs, by stable name.
///
/// Each entry is a *noisy* plan — the shape a fuzzer hands you — whose
/// essential core is much smaller; CI re-runs the shrinker against the
/// matching oracle to prove the reducer still finds the minimal
/// reproducer, and the replay smoke re-records it. Returns the plan and
/// the processor count it is written against.
pub fn archived_plan(name: &str) -> Option<(FaultPlan, u32)> {
    match name {
        // A fuzzer-shaped double-crash: both engines of a 2-processor
        // machine die mid-run (the run can only stall), buried under
        // corrupt events, late crashes and faults aimed at dead victims.
        // The minimal reproducer is the two early crashes alone.
        "noisy-double-crash" => {
            let mut plan = FaultPlan::none();
            for (victim, at, kind) in [
                (0u32, 900u64, FaultKind::Corrupt),
                (1, 1_000, FaultKind::Crash),
                (0, 1_100, FaultKind::Corrupt),
                (1, 1_200, FaultKind::Corrupt),
                (0, 1_400, FaultKind::Crash),
                (1, 1_500, FaultKind::Crash),
                (0, 1_600, FaultKind::Crash),
                (1, 2_000, FaultKind::Corrupt),
                (0, 2_200, FaultKind::Crash),
                (1, 2_400, FaultKind::Crash),
            ] {
                plan = plan.and(victim, VirtualTime(at), kind);
            }
            Some((plan, 2))
        }
        // A fuzzer-shaped root-quorum failover: the two leading replicas
        // of the default 3-replica super-root quorum die mid-run — two
        // successive takeovers, after which the run must still complete —
        // buried under processor corrupts, a processor crash, and a root
        // crash aimed at an already-dead rank. The minimal reproducer is
        // the two live root-replica crashes alone.
        "root-failover" => {
            let plan = FaultPlan::none()
                .and(0, VirtualTime(900), FaultKind::Corrupt)
                .crash_root_replica(0, VirtualTime(1_000))
                .and(1, VirtualTime(1_100), FaultKind::Corrupt)
                .crash_root_replica(1, VirtualTime(1_400))
                .crash_root_replica(0, VirtualTime(1_500))
                .and(2, VirtualTime(1_600), FaultKind::Crash)
                .and(0, VirtualTime(2_000), FaultKind::Corrupt);
            Some((plan, 3))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_gradient::Policy;

    fn cfg(n: u32, threads: u32) -> MachineConfig {
        let mut c = MachineConfig::new(n);
        c.policy = Policy::RoundRobin;
        c.recovery.load_beacon_period = 0;
        c.threads = threads;
        c
    }

    #[test]
    fn record_then_replay_is_bit_identical_on_every_backend() {
        let w = Workload::fib(10);
        let plan = FaultPlan::crash_at(2, VirtualTime(2_000));
        for backend in Backend::ALL {
            let rec = record(backend, cfg(4, 2), &w, &plan);
            assert!(rec.report.completed, "{backend}: run stalled");
            assert!(!rec.events.is_empty(), "{backend}: no events recorded");
            let rp = replay(&rec);
            assert!(
                rp.bit_identical(),
                "{backend}: divergence={:?} report_matches={}",
                rp.divergence,
                rp.report_matches
            );
        }
    }

    #[test]
    fn replay_pinpoints_a_tampered_event() {
        let w = Workload::fib(9);
        let mut rec = record(Backend::Des, cfg(3, 1), &w, &FaultPlan::none());
        // Corrupt one recorded event: replay must point at exactly it.
        let idx = rec.events.len() / 2;
        rec.events[idx].at = VirtualTime(rec.events[idx].at.ticks() + 1);
        let rp = replay(&rec);
        let d = rp.divergence.expect("tampered trace must diverge");
        assert_eq!(d.index, idx);
        assert!(rp.report_matches, "the report itself is untouched");
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("nope"), None);
    }

    #[test]
    fn archived_plans_resolve_by_name() {
        let (plan, n) = archived_plan("noisy-double-crash").expect("archived");
        assert_eq!(n, 2);
        assert_eq!(plan.events.len(), 10);
        let (plan, n) = archived_plan("root-failover").expect("archived");
        assert_eq!(n, 3);
        assert_eq!((plan.events.len(), plan.root_events.len()), (4, 3));
        assert!(archived_plan("unknown").is_none());
    }
}
