//! Run reports: everything a single simulation tells the experiments.

use splice_applicative::Value;
use splice_core::policy::PolicyKind;
use splice_core::stats::ProcStats;
use splice_simnet::time::VirtualTime;
use splice_simnet::trace::TraceSummary;
use std::fmt;

/// The outcome and measurements of one simulated run.
///
/// Derives `PartialEq` so record→replay verification can assert the whole
/// report reproduced bit-identically, field for field.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// The program's answer, if the run completed.
    pub result: Option<Value>,
    /// True when the super-root observed the root result within budget.
    pub completed: bool,
    /// True when the run quiesced without a result: every processor dead,
    /// or nothing left but sampling and no runnable work. Distinct from a
    /// budget trip (`completed == false && stalled == false`), which means
    /// the machine was still making progress when `max_events`/`max_time`
    /// cut it off.
    pub stalled: bool,
    /// Completion time (or the time the budget tripped).
    pub finish: VirtualTime,
    /// Events processed.
    pub events: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages silently dropped at dead destinations.
    pub dropped_to_dead: u64,
    /// Send attempts bounced back to their (live) senders.
    pub bounces: u64,
    /// Aggregate engine statistics.
    pub stats: ProcStats,
    /// Per-processor engine statistics.
    pub per_proc: Vec<ProcStats>,
    /// Sum of per-processor checkpoint-entry peaks.
    pub ckpt_peak_entries: usize,
    /// Sum of per-processor checkpoint-byte peaks.
    pub ckpt_peak_bytes: usize,
    /// Total checkpoints ever stored.
    pub ckpt_stored: u64,
    /// Times the super-root reissued the root program.
    pub root_reissues: u64,
    /// Times a super-root successor took over from a crashed acting
    /// primary (0 unless the fault plan crashed root replicas).
    pub root_failovers: u64,
    /// Super-root replica count the run was configured with.
    pub root_replicas: u32,
    /// `(time, live task count)` samples for baseline modelling.
    pub state_samples: Vec<(u64, u64)>,
    /// Placement log `(time, stamp, proc)`, when enabled.
    pub spawn_log: Vec<(
        u64,
        splice_core::stamp::LevelStamp,
        splice_core::ids::ProcId,
    )>,
    /// Processor count.
    pub n_procs: u32,
    /// Shard count (1 on flat topologies).
    pub shards: u32,
    /// Worker messages that stayed inside one shard (all of them on flat
    /// topologies).
    pub shard_msgs_intra: u64,
    /// Worker messages that crossed the inter-shard router.
    pub shard_msgs_inter: u64,
    /// Envelopes the batching bus delivered (0 with batching off).
    pub batch_envelopes: u64,
    /// Worker messages that travelled through the batching bus.
    pub batch_msgs: u64,
    /// Number of injected faults.
    pub faults: usize,
    /// OS threads the backend executed on (1 for the DES, the simulator
    /// and the single-thread reactor; the pump count on the parallel
    /// reactor).
    pub threads: u32,
    /// Worker messages that crossed a reactor-pump boundary (every
    /// forwarding hop counts; 0 on single-pump backends).
    pub msgs_cross_reactor: u64,
    /// Engines migrated between reactor pumps by work stealing.
    pub steals: u64,
    /// Wire frames the multi-process backend wrote to sockets (0 on
    /// in-process backends).
    pub frames_sent: u64,
    /// Wire frames written again after a connection broke mid-flush.
    pub frames_resent: u64,
    /// Connection attempts made after a previously working (or tried)
    /// link broke — every retry counts, whether or not it succeeded.
    pub reconnects: u64,
    /// Inbound frames rejected by the wire codec (bad length, checksum,
    /// version or structure); each one also drops its connection.
    pub decode_errors: u64,
    /// Canonical-trace fingerprint: event/drop counts plus the stream and
    /// semantic checksums (all zero with tracing off). The `dropped` field
    /// surfaces ring-buffer evictions that were previously lost silently.
    pub trace: TraceSummary,
    /// Recovery policy the run's engines were configured with.
    pub policy: PolicyKind,
}

impl RunReport {
    /// Total work units executed (including redone and garbage work).
    pub fn total_work(&self) -> u64 {
        self.stats.work_units
    }

    /// Tasks executed to completion, across processors.
    pub fn tasks_completed(&self) -> u64 {
        self.stats.tasks_completed
    }

    /// Work imbalance across *surviving* processors: max/mean of per-proc
    /// work units (1.0 = perfectly balanced). Processors that did nothing
    /// count toward the mean.
    pub fn work_imbalance(&self) -> f64 {
        let works: Vec<u64> = self.per_proc.iter().map(|p| p.work_units).collect();
        if works.is_empty() {
            return 1.0;
        }
        let max = *works.iter().max().unwrap() as f64;
        let mean = works.iter().sum::<u64>() as f64 / works.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Redundant-work ratio versus a fault-free baseline report: how much
    /// extra work this run performed, as a fraction of baseline work.
    pub fn redundant_work_vs(&self, baseline: &RunReport) -> f64 {
        let base = baseline.total_work().max(1) as f64;
        (self.total_work() as f64 - base) / base
    }

    /// Slowdown versus a baseline report's completion time.
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        let base = baseline.finish.ticks().max(1) as f64;
        self.finish.ticks() as f64 / base
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "completed={} stalled={} finish={} events={} delivered={} dropped={} bounces={}",
            self.completed,
            self.stalled,
            self.finish,
            self.events,
            self.delivered,
            self.dropped_to_dead,
            self.bounces
        )?;
        if self.shards > 1 {
            writeln!(
                f,
                "shards={} intra={} inter={}",
                self.shards, self.shard_msgs_intra, self.shard_msgs_inter
            )?;
        }
        write!(f, "{}", self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(work: Vec<u64>, finish: u64) -> RunReport {
        let mut per_proc: Vec<ProcStats> = Vec::new();
        let mut total = ProcStats::default();
        for w in &work {
            let s = ProcStats {
                work_units: *w,
                ..ProcStats::default()
            };
            total += &s;
            per_proc.push(s);
        }
        RunReport {
            result: None,
            completed: true,
            stalled: false,
            finish: VirtualTime(finish),
            events: 0,
            delivered: 0,
            dropped_to_dead: 0,
            bounces: 0,
            stats: total,
            per_proc,
            ckpt_peak_entries: 0,
            ckpt_peak_bytes: 0,
            ckpt_stored: 0,
            root_reissues: 0,
            root_failovers: 0,
            root_replicas: 1,
            state_samples: vec![],
            spawn_log: vec![],
            n_procs: work.len() as u32,
            shards: 1,
            shard_msgs_intra: 0,
            shard_msgs_inter: 0,
            batch_envelopes: 0,
            batch_msgs: 0,
            faults: 0,
            threads: 1,
            msgs_cross_reactor: 0,
            steals: 0,
            frames_sent: 0,
            frames_resent: 0,
            reconnects: 0,
            decode_errors: 0,
            trace: TraceSummary::default(),
            policy: PolicyKind::Eager,
        }
    }

    #[test]
    fn imbalance_of_uniform_work_is_one() {
        assert!((report(vec![5, 5, 5, 5], 10).work_imbalance() - 1.0).abs() < 1e-9);
        assert!((report(vec![10, 0], 10).work_imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn comparisons_against_baseline() {
        let base = report(vec![100], 1000);
        let slow = report(vec![150], 1500);
        assert!((slow.redundant_work_vs(&base) - 0.5).abs() < 1e-9);
        assert!((slow.slowdown_vs(&base) - 1.5).abs() < 1e-9);
    }
}
