//! The reactor machine: thousands of engines on one thread.
//!
//! [`ReactorMachine`] is the third backend front-end, next to the DES
//! [`Machine`](crate::machine::Machine) and the threaded
//! `splice_runtime`: the same [`MachineConfig`] and [`FaultPlan`] in, the
//! same [`RunReport`] out, but execution runs on
//! [`splice_harness::ReactorSubstrate`] — a cooperative reactor that pumps
//! every `DriverLoop` from a ready queue on one thread, with no
//! thread-per-processor limit and no event-queue latency model. Messages
//! deliver promptly into per-engine mailboxes; deadlines (engine timers,
//! router surcharges, batching windows) ride timer wheels; the virtual
//! clock advances as waves execute (each wave charges
//! [`CostModel::wave_cost`](crate::cost::CostModel::wave_cost), so fault
//! plans written in virtual time land mid-run exactly like they do on the
//! simulator) and skips ahead when the reactor goes idle.
//!
//! The reactor composes under the same decorator stack as the simulator —
//! [`ShardRouter`] over [`BatchingSubstrate`] — so sharded and batched
//! configurations run unchanged; the surcharges are served by the
//! reactor's delayed-send wheel instead of the DES queue.
//!
//! **Clock semantics.** The reactor serializes every wave onto one real
//! thread, but the machine it emulates runs its engines in parallel — so
//! each wave charges `wave_cost / live_engines` to the virtual clock
//! (with a deterministic remainder carry). Charging full serial cost
//! would make virtual time race ahead of per-engine progress by a factor
//! of the engine count: every spawn's ack timeout would expire before the
//! child's scheduling turn came around, and the resulting reissue storm
//! diverges at reactor scale (thousands of engines). The parallel charge
//! keeps ack/notice/fault timing on the same scale as the simulator while
//! the *order* of execution stays the reactor's own.
//!
//! Scheduling discipline is genuinely different from both other backends
//! (cooperative round-robin over wake order, not global time order and
//! not the OS), which is exactly what makes it the third independent
//! scheduler of the differential fault-plan fuzz suite
//! (`tests/backend_fuzz.rs`): the paper argues recovery is correct
//! independent of how processors are scheduled, so all backends must
//! agree on every plan's verdict and value.

use crate::machine::MachineConfig;
use crate::report::RunReport;
use splice_applicative::{Program, Workload};
use splice_core::ids::ProcId;
use splice_core::place::Placer;
use splice_harness::{
    BatchingSubstrate, DriverLoop, EngineSnapshot, EngineTotals, Inbound, ReactorClock,
    ReactorSubstrate, ShardMap, ShardRouter, Substrate, SuperRootDriver, TracingSubstrate,
};
use splice_simnet::fault::{FaultKind, FaultOutcome, FaultPlan, PlanRun};
use splice_simnet::time::VirtualTime;
use splice_simnet::trace::{TraceEvent, TraceKind, TraceSummary, Tracer};
use std::sync::Arc;
use std::time::Duration;

/// Ready waves one scheduling turn runs before the engine goes back to
/// the tail of the ready queue — long enough to amortize the turn, short
/// enough that no engine starves the reactor.
const WAVE_BURST: usize = 4;

/// The reactor's substrate stack: the same decorator shape as the
/// simulator — inter-shard router over batching bus over the canonical
/// tracer over the reactor core.
type ReactorStack = ShardRouter<BatchingSubstrate<TracingSubstrate<ReactorSubstrate>>>;

/// The cooperative-reactor machine.
pub struct ReactorMachine {
    program: Arc<Program>,
    nodes: Vec<DriverLoop>,
    superroot: SuperRootDriver,
    sub: ReactorStack,
    cfg: MachineConfig,
}

impl ReactorMachine {
    /// Builds a reactor machine for `workload` with per-processor placers
    /// from the configured policy.
    pub fn new(cfg: MachineConfig, workload: &Workload) -> ReactorMachine {
        let topo = cfg.topology.clone();
        let policy = cfg.policy;
        let seed = cfg.seed;
        // One shared roster for every per-engine placer: per-placer roster
        // copies would make an n-engine build O(n^2) memory.
        let all: std::sync::Arc<[splice_core::ids::ProcId]> =
            (0..topo.len()).map(splice_core::ids::ProcId).collect();
        ReactorMachine::with_placer_factory(cfg, workload, |p| {
            policy.build_shared(p, &topo, seed, &all)
        })
    }

    /// Builds a reactor machine with custom placers.
    pub fn with_placer_factory(
        cfg: MachineConfig,
        workload: &Workload,
        mut factory: impl FnMut(ProcId) -> Box<dyn Placer>,
    ) -> ReactorMachine {
        let n = cfg.topology.len();
        assert!(n >= 1, "need at least one processor");
        let program = Arc::new(workload.program.clone());
        let recovery = cfg.engine_recovery();
        let mut nodes = Vec::with_capacity(n as usize);
        for i in 0..n {
            let id = ProcId(i);
            nodes.push(DriverLoop::new(
                id,
                program.clone(),
                recovery.clone(),
                factory(id),
            ));
        }
        let superroot = SuperRootDriver::new(workload, &cfg.recovery);
        let mut core = ReactorSubstrate::new(n, ReactorClock::virtual_units());
        core.set_broadcast(cfg.detector.broadcast);
        let tracer = Tracer::new(cfg.trace);
        let map = ShardMap::new(cfg.topology.shard_count(), cfg.topology.per_shard());
        let sub = ShardRouter::new(
            BatchingSubstrate::new(TracingSubstrate::new(core, tracer), cfg.batch_window),
            map,
            cfg.router_latency,
        );
        ReactorMachine {
            program,
            nodes,
            superroot,
            sub,
            cfg,
        }
    }

    /// Switches the reactor onto the wall clock: one virtual unit lasts
    /// `time_unit` of real time, idle periods and wave costs become real
    /// sleeps, and fault plans land at real instants. Virtual-time results
    /// are unchanged; wall-clock runs exist to drive the reactor as a real
    /// single-threaded server loop.
    pub fn wall_clock(mut self, time_unit: Duration) -> ReactorMachine {
        *self.sub.clock_mut() = ReactorClock::wall(time_unit);
        self
    }

    /// The program under execution.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Wakes `owner` if it holds runnable work the ready queue does not
    /// know about yet (after a timer fire or a delivered stimulus).
    fn poke(&mut self, owner: ProcId) {
        if self.nodes[owner.0 as usize].has_ready() || self.sub.has_inbound(owner) {
            self.sub.wake(owner);
        }
    }

    /// Applies every fault due at the current clock. Runs eagerly (at the
    /// loop top *and* mid-burst after each wave's clock charge) so a due
    /// fault can never be outrun by a busy engine — and so a fault that
    /// turns out to be a no-op (corrupt-after-crash) perturbs nothing,
    /// keeping such plans bit-identical to their crash-only equivalents.
    fn apply_due_faults(&mut self, plan: &mut PlanRun) {
        let now = VirtualTime(self.sub.now_units());
        while let Some((ev, outcome)) = plan.pop_due(now) {
            let victim = ProcId(ev.victim);
            if self.sub.trace_enabled() {
                self.sub.trace(TraceKind::Fault {
                    victim: ev.victim,
                    kind: match ev.kind {
                        FaultKind::Crash => 0,
                        FaultKind::Corrupt => 1,
                    },
                    applied: outcome != FaultOutcome::Ignored,
                });
            }
            match outcome {
                FaultOutcome::Crashed => {
                    self.sub.kill(victim);
                    self.sub.report_death(victim);
                }
                FaultOutcome::Corrupted => self.sub.set_corrupting(victim),
                FaultOutcome::Ignored => {}
            }
        }
        // Root-replica crashes ride their own cursor: the victim domain is
        // replica ranks, not processor ids, and a deposed primary's
        // successor takes over (reissuing the root wave) inside
        // `crash_replica`.
        while let Some(ev) = plan.pop_due_root(now) {
            let applied = self.superroot.replica_live(ev.rank);
            if self.sub.trace_enabled() {
                self.sub.trace(TraceKind::Fault {
                    victim: ev.rank,
                    kind: 2,
                    applied,
                });
            }
            let failed_over = self.superroot.crash_replica(ev.rank, &mut self.sub);
            if failed_over && self.sub.trace_enabled() {
                let new_primary = self.superroot.primary().unwrap_or(u32::MAX);
                self.sub
                    .trace(TraceKind::RootFailover { rank: new_primary });
            }
        }
    }

    /// Runs the workload under `faults` to completion (or until it
    /// quiesces without a result, or a budget trips) and reports.
    pub fn run(self, faults: &FaultPlan) -> RunReport {
        self.run_traced(faults).0
    }

    /// Like [`ReactorMachine::run`], but also returns the recorded trace
    /// events (empty unless `cfg.trace` is a recording mode).
    pub fn run_traced(mut self, faults: &FaultPlan) -> (RunReport, Vec<TraceEvent>) {
        let mut plan = PlanRun::new(faults, self.nodes.len() as u32);
        for node in &mut self.nodes {
            node.start(&mut self.sub);
        }
        self.superroot.launch(&mut self.sub);
        self.sub.inner_mut().flush();

        let mut pumps: u64 = 0;
        let mut finish: Option<VirtualTime> = None;
        let mut budget_tripped = false;
        // Remainder carry of the parallel clock charge (see the module
        // docs): waves charge `wave_cost / live`, and the remainders
        // accumulate here so no cost is ever lost to integer division.
        let mut carry: u64 = 0;
        'run: loop {
            pumps += 1;
            let now = VirtualTime(self.sub.now_units());
            if pumps > self.cfg.max_events || now > self.cfg.max_time {
                budget_tripped = true;
                break;
            }
            // Faults due now — the shared `PlanRun` owns the transition
            // rules; the reactor only routes the outcome.
            self.apply_due_faults(&mut plan);
            // Due deadlines: parked delayed sends, then engine timers.
            self.sub.release_delayed_due();
            while let Some((owner, timer)) = self.sub.pop_due_timer() {
                if owner.is_super_root() {
                    self.superroot.on_timer(timer, &mut self.sub);
                } else if self.sub.is_live(owner) {
                    self.nodes[owner.0 as usize].on_timer(timer, &mut self.sub);
                    self.poke(owner);
                }
            }
            // The super-root driver runs between engine turns.
            while let Some(dead) = self.sub.pop_sr_notice() {
                self.superroot.on_failure(dead, &mut self.sub);
            }
            while let Some(msg) = self.sub.pop_sr_mail() {
                self.superroot.on_message(msg, &mut self.sub);
            }
            if self.superroot.result().is_some() {
                finish = Some(VirtualTime(self.sub.now_units()));
                break;
            }
            // With every root replica dead the super-root role itself is
            // gone: inputs are discarded, so no delivery can ever set the
            // result. Quiesce as stalled immediately.
            if !self.superroot.has_live_replica() {
                break;
            }
            if let Some(p) = self.sub.pop_ready() {
                // One cooperative turn: drain the stimuli that were
                // waiting when the turn began (never more — a bounce of
                // one of this turn's own sends would otherwise re-fill the
                // mailbox as fast as it drains and livelock the reactor),
                // then a bounded burst of ready waves, each charging its
                // cost to the clock so fault times stay meaningful.
                let i = p.0 as usize;
                for _ in 0..self.sub.mail_len(p) {
                    let Some(ib) = self.sub.pop_inbound(p) else {
                        break;
                    };
                    match ib {
                        Inbound::Msg(msg) => self.nodes[i].on_message(msg, &mut self.sub),
                        Inbound::Bounce { dead, msg } => {
                            self.nodes[i].on_send_failed(dead, msg, &mut self.sub)
                        }
                    }
                }
                for _ in 0..WAVE_BURST {
                    if !self.nodes[i].run_ready_wave(&mut self.sub) {
                        break;
                    }
                    // Parallel clock charge: this wave occupied one of
                    // `live` engines, so the emulated machine's clock
                    // moves by cost/live (carry keeps the division exact
                    // over time).
                    let work = self.sub.take_work();
                    carry += self.cfg.cost.wave_cost(work);
                    let live = u64::from(self.sub.live_count().max(1));
                    let step = carry / live;
                    carry %= live;
                    let done = self.sub.now_units() + step;
                    self.sub.clock_mut().advance_to(done);
                    // A fault may have become due under the new clock;
                    // apply it before more waves run — the engine itself
                    // may now be dead.
                    self.apply_due_faults(&mut plan);
                    if !self.sub.is_live(p) {
                        break;
                    }
                }
                self.poke(p);
            } else {
                // Idle. With every engine dead and the driver link quiet
                // the result can never arrive — the super-root's hopeless
                // reissue cycle must not spin the clock forever.
                if self.sub.live_count() == 0 && self.sub.sr_quiet() {
                    break;
                }
                // Otherwise skip the clock to the next thing that can
                // happen: a deadline or a scheduled fault. Nothing left at
                // all is quiescence without a result.
                let next_io = self.sub.next_deadline();
                let next_fault = plan.next_at().map(|t| t.ticks());
                let target = match (next_io, next_fault) {
                    (Some(a), Some(b)) => a.min(b),
                    (a, b) => match a.or(b) {
                        Some(t) => t,
                        None => break 'run,
                    },
                };
                self.sub.clock_mut().advance_to(target);
            }
            // One turn, one batch: traffic buffered on the bus this turn
            // goes out now, `batch_window` units late.
            self.sub.inner_mut().flush();
        }

        let stalled = finish.is_none() && !budget_tripped;
        let trace_events = self.sub.inner_mut().inner_mut().tracer_mut().take_events();
        (
            self.build_report(pumps, finish, stalled, faults),
            trace_events,
        )
    }

    /// Canonical-trace fingerprint accumulated so far.
    pub fn trace_summary(&self) -> TraceSummary {
        self.sub.inner().inner().tracer().summary()
    }

    fn build_report(
        &mut self,
        events: u64,
        finish: Option<VirtualTime>,
        stalled: bool,
        faults: &FaultPlan,
    ) -> RunReport {
        let totals =
            EngineTotals::collect(self.nodes.iter().map(|n| EngineSnapshot::of(n.engine())));
        let shard_stats = self.sub.stats();
        let (shard_msgs_intra, shard_msgs_inter) = (shard_stats.intra_msgs, shard_stats.inter_msgs);
        let batch_stats = *self.sub.inner().batch_stats();
        RunReport {
            result: self.superroot.result().cloned(),
            completed: finish.is_some(),
            stalled,
            finish: finish.unwrap_or(VirtualTime(self.sub.now_units())),
            events,
            delivered: self.sub.delivered(),
            dropped_to_dead: self.sub.dropped_to_dead(),
            bounces: self.sub.bounces(),
            stats: totals.stats,
            per_proc: totals.per_proc,
            ckpt_peak_entries: totals.ckpt_peak_entries,
            ckpt_peak_bytes: totals.ckpt_peak_bytes,
            ckpt_stored: totals.ckpt_stored,
            root_reissues: self.superroot.reissues(),
            root_failovers: self.superroot.failovers(),
            root_replicas: self.superroot.replicas(),
            state_samples: Vec::new(),
            spawn_log: Vec::new(),
            n_procs: self.nodes.len() as u32,
            shards: self.sub.map().shards,
            shard_msgs_intra,
            shard_msgs_inter,
            batch_envelopes: batch_stats.envelopes,
            batch_msgs: batch_stats.messages,
            faults: faults.events.len() + faults.root_events.len(),
            threads: 1,
            msgs_cross_reactor: 0,
            steals: 0,
            frames_sent: 0,
            frames_resent: 0,
            reconnects: 0,
            decode_errors: 0,
            trace: self.sub.inner().inner().tracer().summary(),
            policy: self
                .nodes
                .first()
                .map(|n| n.engine().policy_kind())
                .unwrap_or_default(),
        }
    }
}

/// Convenience: run `workload` on the reactor backend under `cfg` and a
/// fault plan.
pub fn run_reactor(cfg: MachineConfig, workload: &Workload, faults: &FaultPlan) -> RunReport {
    ReactorMachine::new(cfg, workload).run(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::config::RecoveryMode;
    use splice_gradient::Policy;
    use splice_simnet::fault::FaultKind;

    fn cfg(n: u32) -> MachineConfig {
        let mut c = MachineConfig::new(n);
        c.policy = Policy::RoundRobin;
        c.recovery.load_beacon_period = 0;
        c
    }

    #[test]
    fn fault_free_run_matches_reference() {
        let w = Workload::fib(10);
        let r = run_reactor(cfg(4), &w, &FaultPlan::none());
        assert!(r.completed, "reactor stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.stats.tasks_completed >= 177);
        assert_eq!(r.stats.eval_errors, 0);
        assert!(r.finish > VirtualTime(0), "waves must charge the clock");
    }

    #[test]
    fn fault_free_small_suite() {
        for w in Workload::suite_small() {
            let r = run_reactor(cfg(5), &w, &FaultPlan::none());
            assert!(r.completed, "{}", w.name);
            assert_eq!(r.result, Some(w.reference_result().unwrap()), "{}", w.name);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Workload::quicksort(24, 7);
        let faults = FaultPlan::crash_at(3, VirtualTime(2_500));
        let a = run_reactor(cfg(5), &w, &faults);
        let b = run_reactor(cfg(5), &w, &faults);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.delivered, b.delivered);
    }

    /// Fault-free completion time, for timing crashes mid-run (the
    /// reactor's parallel-charged clock has its own timescale; absolute
    /// tick constants tuned for the DES would race run completion).
    fn ff_finish(c: &MachineConfig, w: &Workload) -> u64 {
        let r = run_reactor(c.clone(), w, &FaultPlan::none());
        assert!(r.completed, "{} baseline stalled", w.name);
        r.finish.ticks()
    }

    #[test]
    fn single_crash_splice_recovers() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        let crash = ff_finish(&c, &w) / 3;
        let faults = FaultPlan::crash_at(2, VirtualTime(crash.max(1)));
        let r = run_reactor(c, &w, &faults);
        assert!(r.completed, "reactor crash run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn single_crash_rollback_recovers() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Rollback;
        let crash = ff_finish(&c, &w) / 3;
        let faults = FaultPlan::crash_at(1, VirtualTime(crash.max(1)));
        let r = run_reactor(c, &w, &faults);
        assert!(r.completed, "rollback run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn all_crash_plan_stalls_quickly() {
        let w = Workload::fib(12);
        let c = cfg(4);
        let max_events = c.max_events;
        // Every processor dies mid-run (a third of the way through the
        // fault-free timeline — faults can only push completion later, so
        // the massacre demonstrably lands before the result).
        let crash = VirtualTime((ff_finish(&c, &w) / 3).max(1));
        let mut faults = FaultPlan::none();
        for p in 0..4 {
            faults = faults.and(p, crash, FaultKind::Crash);
        }
        let r = run_reactor(c, &w, &faults);
        assert!(!r.completed);
        assert!(r.stalled, "all-dead run must be reported as stalled");
        assert_eq!(r.result, None);
        assert!(
            r.events < max_events / 100,
            "stall detected after {} pumps (budget {max_events})",
            r.events
        );
    }

    #[test]
    fn corrupt_after_crash_is_inert() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        let t = ff_finish(&c, &w);
        let crash_only = FaultPlan::crash_at(2, VirtualTime((t / 3).max(1)));
        let with_corrupt =
            crash_only
                .clone()
                .and(2, VirtualTime((t / 2).max(2)), FaultKind::Corrupt);
        let a = run_reactor(c.clone(), &w, &crash_only);
        let b = run_reactor(c, &w, &with_corrupt);
        assert!(a.completed && b.completed);
        assert_eq!(a.result, b.result);
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn root_processor_crash_is_survived_via_super_root() {
        let w = Workload::fib(10);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        let crash = ff_finish(&c, &w) / 4;
        let faults = FaultPlan::crash_at(0, VirtualTime(crash.max(1)));
        let r = run_reactor(c, &w, &faults);
        assert!(r.completed);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn sharded_and_batched_decorators_compose_on_the_reactor() {
        let w = Workload::fib(12);
        let mut c = MachineConfig::sharded(2, 2, 200);
        c.policy = Policy::RoundRobin;
        c.batch_window = 150;
        c.recovery.ack_timeout += 4 * c.batch_window;
        c.recovery.load_beacon_period = 0;
        let r = run_reactor(c, &w, &FaultPlan::none());
        assert!(r.completed, "sharded+batched reactor run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.shard_msgs_inter > 0, "traffic must cross the router");
        assert!(r.batch_msgs > 0, "traffic must ride the bus");
    }

    #[test]
    fn whole_shard_crash_is_survived() {
        let w = Workload::fib(13);
        let mut c = MachineConfig::sharded(4, 4, 200);
        c.policy = Policy::RoundRobin;
        c.recovery.mode = RecoveryMode::Splice;
        c.recovery.load_beacon_period = 0;
        let crash = ff_finish(&c, &w) / 3;
        let faults = FaultPlan::crash_shard(1, 4, VirtualTime(crash.max(1)));
        let r = run_reactor(c, &w, &faults);
        assert!(r.completed, "sharded reactor run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn detector_disabled_recovery_completes_via_bounces_alone() {
        let w = Workload::fib(12);
        let mut c = cfg(4);
        c.recovery.mode = RecoveryMode::Splice;
        c.detector.broadcast = false;
        let crash = ff_finish(&c, &w) / 3;
        let faults = FaultPlan::crash_at(2, VirtualTime(crash.max(1)));
        let r = run_reactor(c, &w, &faults);
        assert!(r.completed, "bounce-only reactor recovery stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.bounces > 0, "discovery must have come from bounces");
    }

    #[test]
    fn silent_massacre_of_acked_hosts_is_discovered_by_probes() {
        // Round-robin has no beacon neighbourhood, so gossip has nowhere
        // to go, and the coarse reactor clock lands the crash after most
        // placements are acked: without acked-child probing the parents
        // of children on the dead hosts would wait forever (nothing ever
        // bounces — the sends all completed before the crash).
        let w = Workload::fib(12);
        let mut c = cfg(256);
        c.recovery.mode = RecoveryMode::Splice;
        c.detector.broadcast = false;
        let crash = ff_finish(&c, &w) / 2;
        let mut faults = FaultPlan::none();
        for v in (1..128u32).step_by(2) {
            faults = faults.and(v, VirtualTime(crash.max(1)), FaultKind::Crash);
        }
        let r = run_reactor(c, &w, &faults);
        assert!(r.completed, "silent-massacre reactor recovery stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn thousands_of_engines_on_one_thread() {
        // The headline capability: no thread-per-processor limit. 2048
        // engines, one thread, reference answer out.
        let w = Workload::fib(12);
        let c = cfg(2_048);
        let r = run_reactor(c, &w, &FaultPlan::none());
        assert!(r.completed, "2048-engine reactor run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert_eq!(r.n_procs, 2_048);
    }

    #[test]
    fn wall_clock_reactor_completes() {
        let w = Workload::fib(8);
        // On the wall clock, protocol timeouts are real durations: the
        // time unit must be sized so the ack timeout clears real
        // scheduling latency (the same tuning rule as the threaded
        // runtime's `time_unit`), or every spawn reissues before its ack
        // gets a turn. 1µs × 20k units = a 20ms ack timeout.
        let mut c = cfg(3);
        c.recovery.ack_timeout = 20_000;
        let m = ReactorMachine::new(c, &w).wall_clock(Duration::from_micros(1));
        let r = m.run(&FaultPlan::none());
        assert!(r.completed, "wall-clock reactor run stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }
}
