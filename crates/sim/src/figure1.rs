//! The paper's Figure 1, executable.
//!
//! "Suppose that an applicative program has been spawned into the call tree
//! as shown in Figure 1. ... Suppose that processor B fails. Then tasks Bi
//! are destroyed. The call tree is thus fragmented into three pieces:
//! {A1,C1,C2,C3,D3}, {A2,D1,D2,C4}, and {D4,D5,A5}."
//!
//! This module reconstructs that exact tree — a dedicated combinator per
//! task, pinned to processors A–D by a scripted placer — kills B at the
//! moment the paper's snapshot depicts (B5 just placed, B1/B2/B3/B7 all
//! mid-flight), and lets either recovery algorithm finish the run. Tests
//! and experiment E1 assert the paper's claims on the result:
//!
//! * recovery re-issues exactly B1 (from A), B2 and B3 (from C) and B7
//!   (from D);
//! * B5 is **not** re-issued under the topmost rule, because its checkpoint
//!   stamp descends from B2's within processor C's entry for B (and in
//!   rollback its owner C4 aborts);
//! * under rollback the two orphan fragments commit suicide;
//! * under splice the orphan fragments survive and their results are
//!   spliced into the regenerated twins.

use crate::machine::{Machine, MachineConfig};
use crate::report::RunReport;
use splice_applicative::parser::parse;
use splice_applicative::{Value, Workload};
use splice_core::config::{CheckpointFilter, RecoveryMode};
use splice_core::ids::ProcId;
use splice_core::place::ScriptedPlacer;
use splice_core::stamp::LevelStamp;
use splice_gradient::Policy;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;
use splice_simnet::topology::Topology;

/// Processor A.
pub const A: ProcId = ProcId(0);
/// Processor B (the one that fails).
pub const B: ProcId = ProcId(1);
/// Processor C.
pub const C: ProcId = ProcId(2);
/// Processor D.
pub const D: ProcId = ProcId(3);

/// The Figure-1 program: one combinator per task; every task returns the
/// size of its subtree, so the root answer (20) checks the whole tree ran.
///
/// Tree (processor in brackets; `b1x/b3x/b7x` are slow B-local chains that
/// keep B1/B3/B7 in flight at the crash instant, and `a5` is a slow A-local
/// chain that keeps the {D4,D5,A5} fragment alive):
///
/// ```text
/// a1[A] ── b1[B] ── b1x[B]
///      └── c1[C] ── b2[B] ── d4[D] ── d5[D] ── a5[A]
///                        └── a2[A] ── d1[D]
///                                 └── d2[D] ── c4[C] ── b5[B]
///               ├── b3[B] ── b3x[B]
///               └── c2[C] ── c3[C]
///                        └── d3[D] ── b7[B] ── b7x[B]
/// ```
const SOURCE: &str = r#"
(def bchain (n) (if (<= n 0) 1 (bchain (- n 1))))
(def achain (n) (if (<= n 0) 1 (achain (- n 1))))
(def b1x () (bchain 10))
(def b1 () (+ 1 (b1x)))
(def a5 () (achain 12))
(def d5 () (+ 1 (a5)))
(def d4 () (+ 1 (d5)))
(def d1 () 1)
(def b5 () 1)
(def c4 () (+ 1 (b5)))
(def d2 () (+ 1 (c4)))
(def a2 () (+ 1 (+ (d1) (d2))))
(def b2 () (+ 1 (+ (d4) (a2))))
(def b3x () (bchain 10))
(def b3 () (+ 1 (b3x)))
(def c3 () 1)
(def b7x () (bchain 10))
(def b7 () (+ 1 (b7x)))
(def d3 () (+ 1 (b7)))
(def c2 () (+ 1 (+ (c3) (d3))))
(def c1 () (+ 1 (+ (+ (b2) (b3)) (c2))))
(def a1 () (+ 1 (+ (b1) (c1))))
"#;

/// Total number of tasks in the tree (= the root's answer).
pub const TREE_SIZE: i64 = 20;

/// Builds the Figure-1 workload.
pub fn workload() -> Workload {
    let parsed = parse(SOURCE).expect("figure-1 program parses");
    assert!(parsed.program.validate().is_empty());
    let entry = parsed.program.lookup("a1").unwrap();
    Workload {
        name: "figure1".into(),
        program: parsed.program,
        entry,
        args: vec![],
    }
}

/// The level stamps of every named task, derived from deterministic demand
/// order (see module docs of `splice_applicative::wave`).
pub fn stamps() -> Vec<(&'static str, LevelStamp, ProcId)> {
    let s = LevelStamp::from_digits;
    vec![
        ("a1", s(&[1]), A),
        ("b1", s(&[1, 1]), B),
        ("c1", s(&[1, 2]), C),
        ("b1x", s(&[1, 1, 1]), B),
        ("b2", s(&[1, 2, 1]), B),
        ("b3", s(&[1, 2, 2]), B),
        ("c2", s(&[1, 2, 3]), C),
        ("d4", s(&[1, 2, 1, 1]), D),
        ("a2", s(&[1, 2, 1, 2]), A),
        ("b3x", s(&[1, 2, 2, 1]), B),
        ("c3", s(&[1, 2, 3, 1]), C),
        ("d3", s(&[1, 2, 3, 2]), D),
        ("d5", s(&[1, 2, 1, 1, 1]), D),
        ("d1", s(&[1, 2, 1, 2, 1]), D),
        ("d2", s(&[1, 2, 1, 2, 2]), D),
        ("b7", s(&[1, 2, 3, 2, 1]), B),
        ("a5", s(&[1, 2, 1, 1, 1, 1]), A),
        ("c4", s(&[1, 2, 1, 2, 2, 1]), C),
        ("b7x", s(&[1, 2, 3, 2, 1, 1]), B),
        ("b5", s(&[1, 2, 1, 2, 2, 1, 1]), B),
    ]
}

/// Stamp of a named Figure-1 task.
pub fn stamp_of(name: &str) -> LevelStamp {
    stamps()
        .into_iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, s, _)| s)
        .unwrap_or_else(|| panic!("unknown figure-1 task `{name}`"))
}

fn machine_config(mode: RecoveryMode, filter: CheckpointFilter) -> MachineConfig {
    let mut cfg = MachineConfig::new(4);
    cfg.topology = Topology::Complete { n: 4 };
    cfg.policy = Policy::RoundRobin; // overridden by the scripted placer
    cfg.recovery.mode = mode;
    cfg.recovery.ckpt_filter = filter;
    cfg.recovery.load_beacon_period = 0;
    cfg
}

fn build_machine(mode: RecoveryMode, filter: CheckpointFilter) -> Machine {
    let w = workload();
    let assignments = stamps();
    let mut m = Machine::with_placer_factory(machine_config(mode, filter), &w, move |_p| {
        let mut sp = ScriptedPlacer::new(vec![B, D, C, A]); // anything unknown lands on B
        for (_, stamp, proc) in &assignments {
            sp.assign(stamp.clone(), *proc);
        }
        // The filler chains stay on their hosts.
        sp.assign_subtree(stamp_of("b1x"), B);
        sp.assign_subtree(stamp_of("b3x"), B);
        sp.assign_subtree(stamp_of("b7x"), B);
        sp.assign_subtree(stamp_of("a5"), A);
        Box::new(sp)
    });
    m.enable_spawn_log();
    m
}

/// Finds the crash instant: one tick after B5's task packet lands on B —
/// the snapshot moment of the paper's Figure 1 (every Bi in flight).
pub fn crash_instant() -> VirtualTime {
    let probe = build_machine(RecoveryMode::Splice, CheckpointFilter::Topmost);
    let report = probe.run(&FaultPlan::none());
    assert!(report.completed, "figure-1 probe run must complete");
    let b5 = stamp_of("b5");
    let t = report
        .spawn_log
        .iter()
        .find(|(_, s, _)| *s == b5)
        .map(|(t, _, _)| *t)
        .expect("b5 is spawned in the probe run");
    VirtualTime(t + 1)
}

/// Outcome of the Figure-1 scenario.
#[derive(Clone, Debug)]
pub struct Figure1Outcome {
    /// The full run report.
    pub report: RunReport,
    /// Virtual time at which B was crashed.
    pub crash_at: VirtualTime,
}

impl Figure1Outcome {
    /// True when the run finished with the correct tree size.
    pub fn correct(&self) -> bool {
        self.report.result == Some(Value::Int(TREE_SIZE))
    }
}

/// Runs the scenario: build the tree, crash B at the snapshot instant,
/// recover with `mode`/`filter`, and report.
pub fn run(mode: RecoveryMode, filter: CheckpointFilter) -> Figure1Outcome {
    let crash_at = crash_instant();
    let m = build_machine(mode, filter);
    let report = m.run(&FaultPlan::crash_at(B.0, crash_at));
    Figure1Outcome { report, crash_at }
}

/// Verifies the placement of the probe run matches the figure (every task
/// on its processor). Returns the mismatches (empty = exact).
pub fn verify_placement() -> Vec<String> {
    let probe = build_machine(RecoveryMode::Splice, CheckpointFilter::Topmost);
    let report = probe.run(&FaultPlan::none());
    let mut problems = Vec::new();
    for (name, stamp, want) in stamps() {
        match report
            .spawn_log
            .iter()
            .find(|(_, s, _)| *s == stamp)
            .map(|(_, _, p)| *p)
        {
            Some(got) if got == want => {}
            Some(got) => problems.push(format!("{name} placed on {got}, expected {want}")),
            None => problems.push(format!("{name} never spawned")),
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_evaluates_to_its_size() {
        let w = workload();
        assert_eq!(w.reference_result().unwrap(), Value::Int(TREE_SIZE));
    }

    #[test]
    fn placement_matches_the_figure() {
        let problems = verify_placement();
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn fault_free_run_completes() {
        let m = build_machine(RecoveryMode::Splice, CheckpointFilter::Topmost);
        let r = m.run(&FaultPlan::none());
        assert!(r.completed);
        assert_eq!(r.result, Some(Value::Int(TREE_SIZE)));
        // 20 named tasks + three 11-task bchains on B + the 13-task achain
        // under a5 on A.
        assert_eq!(r.stats.tasks_created, 66);
    }

    #[test]
    fn rollback_recovers_and_skips_b5() {
        let out = run(RecoveryMode::Rollback, CheckpointFilter::Topmost);
        assert!(out.report.completed, "rollback run stalled");
        assert!(out.correct());
        // The two orphan fragment tops (D4 on D, A2 on A) commit suicide...
        assert_eq!(out.report.stats.orphans_suicided, 2);
        // ...and their fragments are garbage collected by the cascade.
        // The exact membership depends on how far the fragments spawned
        // ahead of the abort wave under the link cost model (every
        // genealogical link is charged at true size); deterministically 8
        // tasks here.
        assert_eq!(out.report.stats.tasks_aborted, 8);
        // Recovery re-issues exactly B1 (A), B2+B3 (C), B7 (D) — not B5.
        assert_eq!(out.report.stats.reissues, 4, "{}", out.report.stats);
    }

    #[test]
    fn rollback_without_topmost_rule_reissues_b5_fruitlessly() {
        let out = run(RecoveryMode::Rollback, CheckpointFilter::All);
        assert!(out.report.completed);
        assert!(out.correct());
        // The ablation re-issues B5 as well ("reactivation of B5 only
        // increases the system overhead").
        assert!(
            out.report.stats.reissues >= 5,
            "expected the fruitless B5 reissue, got {}",
            out.report.stats.reissues
        );
        let topmost = run(RecoveryMode::Rollback, CheckpointFilter::Topmost);
        assert!(
            out.report.total_work() >= topmost.report.total_work(),
            "ablation performs at least as much work"
        );
    }

    #[test]
    fn splice_salvages_orphan_results() {
        let out = run(RecoveryMode::Splice, CheckpointFilter::Topmost);
        assert!(out.report.completed, "splice run stalled");
        assert!(out.correct());
        // No suicides in splice mode: orphans keep computing.
        assert_eq!(out.report.stats.orphans_suicided, 0);
        assert_eq!(out.report.stats.tasks_aborted, 0);
        // Every live parent of a dead child created a twin: B1 (A), B2+B3
        // (C1), B5 (C4), B7 (D3).
        assert_eq!(out.report.stats.step_parents_created, 5);
        // Both orphan fragments (D4's and A2's) delivered their results via
        // the grandparent relay.
        assert_eq!(out.report.stats.salvaged_results, 2, "{}", out.report.stats);
    }

    #[test]
    fn splice_preserves_orphan_progress_rollback_discards_it() {
        let rollback = run(RecoveryMode::Rollback, CheckpointFilter::Topmost);
        let splice = run(RecoveryMode::Splice, CheckpointFilter::Topmost);
        // Rollback throws 10 tasks of partial progress away (2 suicides +
        // 8 cascade aborts under the true-size link cost model); splice
        // aborts nothing and completes more tasks usefully.
        let rolled_away =
            rollback.report.stats.orphans_suicided + rollback.report.stats.tasks_aborted;
        assert_eq!(rolled_away, 10);
        assert_eq!(
            splice.report.stats.orphans_suicided + splice.report.stats.tasks_aborted,
            0
        );
        assert!(
            splice.report.stats.tasks_completed > rollback.report.stats.tasks_completed,
            "splice {} vs rollback {}",
            splice.report.stats.tasks_completed,
            rollback.report.stats.tasks_completed
        );
    }
}
