//! Emits `BENCH_substrate.json`: a machine-readable perf trajectory for
//! the substrate micro-benches plus the E11 scalability, E14 sharding,
//! E16 reactor and E18 recovery-policy experiment benches, and (on unix,
//! when the worker binary is built) the multi-process backend on the E14
//! topology.
//!
//! Each invocation measures medians on the current build and *appends* one
//! labelled run to the file, so successive PRs accumulate a before/after
//! history future sessions can diff mechanically:
//!
//! ```text
//! cargo run --release -p splice-bench --bin bench_trajectory -- \
//!     --label pr3-post [--out BENCH_substrate.json] [--quick]
//! ```
//!
//! All times are nanoseconds (medians; each run records its per-block
//! sample counts and a `method` string for provenance — hand-recorded
//! entries, e.g. measurements interleaved against an old-tree worktree,
//! name their method too). No serde: the format is a fixed skeleton with
//! one JSON run object per line inside `"runs"`; this tool rewrites the
//! file canonically from those lines on every append.

use splice_applicative::eval::eval_call;
use splice_applicative::wave::run_local;
use splice_bench::{
    assert_correct, config, e11_workload, e14_cases, e14_config, e14_workload, e16_config,
    e16_threads_config, e16_workload, e18_config, e18_workload, event_queue_push_pop_10k,
    substrate_workload, torus_distance_64x64, E11_SWEEP, E16_ENGINES, E16_THREADS,
    E16_THREAD_ENGINES,
};
use splice_sim::machine::run_workload;
use splice_sim::parallel::run_parallel_reactor;
use splice_sim::reactor::run_reactor;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;
use std::time::Instant;

/// Median wall-clock nanoseconds of `samples` runs of `f` (one warm-up
/// call excluded).
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f(); // warm-up
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn substrate_metrics(samples: usize) -> Vec<(&'static str, u64)> {
    // Identical scenario bodies to benches/substrate.rs — shared helpers
    // keep the trajectory's metric names honest.
    let w = substrate_workload();
    vec![
        (
            "reference_eval_fib15",
            median_ns(samples, || {
                eval_call(&w.program, w.entry, &w.args).unwrap();
            }),
        ),
        (
            "wave_eval_local_fib15",
            median_ns(samples, || {
                run_local(&w.program, w.entry, &w.args).unwrap();
            }),
        ),
        (
            "event_queue_push_pop_10k",
            median_ns(samples, || {
                std::hint::black_box(event_queue_push_pop_10k());
            }),
        ),
        (
            "torus_distance_64x64",
            median_ns(samples, || {
                std::hint::black_box(torus_distance_64x64());
            }),
        ),
    ]
}

fn e11_metrics(samples: usize) -> Vec<(String, u64)> {
    // Identical scenario to benches/e11_scalability.rs — shared builders
    // keep the trajectory file comparable to the criterion bench.
    let w = e11_workload();
    let (procs, modes) = E11_SWEEP;
    let mut out = Vec::new();
    for n in procs {
        for (label, mode) in modes {
            let ns = median_ns(samples, || {
                let r = run_workload(config(n, mode), &w, &FaultPlan::none());
                assert_correct(&w, &r);
            });
            out.push((format!("p{n}_{label}"), ns));
        }
    }
    out
}

fn e14_metrics(samples: usize) -> Vec<(&'static str, u64)> {
    // Identical scenario to benches/e14_sharding.rs.
    let w = e14_workload();
    let base = run_workload(e14_config(), &w, &FaultPlan::none());
    assert_correct(&w, &base);
    let crash = VirtualTime(base.finish.ticks() / 2);
    let mut out = Vec::new();
    for (name, plan) in e14_cases(crash) {
        let ns = median_ns(samples, || {
            let r = run_workload(e14_config(), &w, &plan);
            assert_correct(&w, &r);
        });
        out.push((name, ns));
    }
    out
}

fn e16_metrics(samples: usize) -> Vec<(String, u64)> {
    // Identical scenario to benches/e16_reactor.rs: the reactor backend's
    // fault-free completion wall-clock per engine count (construction
    // included — at 4096 engines the build cost is a scaling property).
    let w = e16_workload();
    let mut out = Vec::new();
    for engines in E16_ENGINES {
        let ns = median_ns(samples, || {
            let r = run_reactor(
                e16_config(engines),
                &w,
                &splice_simnet::fault::FaultPlan::none(),
            );
            assert_correct(&w, &r);
        });
        out.push((format!("n{engines}_fault_free"), ns));
    }
    out
}

fn e16_threads_metrics(samples: usize) -> Vec<(String, u64)> {
    // Identical scenario to the fault-free sweep of benches/e16_threads.rs:
    // the parallel reactor's completion wall-clock per (pumps, engines)
    // cell. Speedup across the thread axis is a property of the recording
    // container's core count — a single-core host records the barrier
    // overhead instead, honestly.
    let w = e16_workload();
    let mut out = Vec::new();
    for engines in E16_THREAD_ENGINES {
        for threads in E16_THREADS {
            let ns = median_ns(samples, || {
                let r = run_parallel_reactor(
                    e16_threads_config(engines, threads),
                    &w,
                    &FaultPlan::none(),
                );
                assert_correct(&w, &r);
            });
            out.push((format!("t{threads}_n{engines}_fault_free"), ns));
        }
    }
    out
}

fn e18_metrics(samples: usize) -> Vec<(String, u64)> {
    // Identical scenario to benches/e18_policies.rs: each recovery policy
    // timed fault-free and through a mid-run crash of processor 7 on the
    // shared 8-processor splice machine.
    let w = e18_workload();
    let mut out = Vec::new();
    for kind in splice_core::policy::PolicyKind::ALL {
        let base = run_workload(e18_config(kind), &w, &FaultPlan::none());
        assert_correct(&w, &base);
        let crash = FaultPlan::crash_at(7, VirtualTime(base.finish.ticks() / 2));
        for (case, plan) in [("fault_free", FaultPlan::none()), ("mid_crash", crash)] {
            let ns = median_ns(samples, || {
                let r = run_workload(e18_config(kind), &w, &plan);
                assert_correct(&w, &r);
            });
            out.push((format!("{}_{case}", kind.label()), ns));
        }
    }
    out
}

/// The E14 scenario again — same 4×4 topology, same workload, same
/// round-robin placement and splice recovery — but with every shard in
/// its own OS process behind real Unix sockets instead of the in-process
/// `ShardRouter`, so the delta against `e14_sharding` is the cost of the
/// wire codec and socket transport. The kill case SIGKILLs shard 3's
/// worker for real. Wall-clock driven and scheduled by the host, so on a
/// single-CPU recording container these medians measure socket/codec
/// overhead, not parallel speedup.
#[cfg(unix)]
fn proc_metrics(samples: usize) -> Vec<(String, u64)> {
    use splice_core::config::RecoveryMode;
    use splice_sim::proc::{run_process, ProcConfig};
    use splice_simnet::fault::ProcessFaultPlan;

    let mk = || {
        let mut cfg = ProcConfig::new(4, 4);
        cfg.policy = splice_gradient::Policy::RoundRobin;
        cfg.recovery.mode = RecoveryMode::Splice;
        cfg
    };
    if mk().worker_bin_path().is_none() {
        eprintln!(
            "  (skipped: splice-proc-worker not built — `cargo build --release` \
             puts it next to this binary)"
        );
        return Vec::new();
    }
    let w = e14_workload();
    let cases = [
        ("fault_free", ProcessFaultPlan::none()),
        // Fault-free fib(13) takes ~850 time units wall-clock here, so
        // t=300 lands the SIGKILL mid-run rather than after the finish.
        (
            "whole_shard_kill",
            ProcessFaultPlan::none().kill_shard(3, VirtualTime(300)),
        ),
    ];
    cases
        .iter()
        .map(|(name, plan)| {
            let ns = median_ns(samples, || {
                let r = run_process(&mk(), &w, plan).expect("process run failed to launch");
                assert_correct(&w, &r);
            });
            (format!("s4x4_{name}"), ns)
        })
        .collect()
}

#[cfg(not(unix))]
fn proc_metrics(_samples: usize) -> Vec<(String, u64)> {
    Vec::new()
}

fn json_object<K: AsRef<str>>(metrics: &[(K, u64)]) -> String {
    let fields: Vec<String> = metrics
        .iter()
        .map(|(k, v)| format!("\"{}\": {v}", k.as_ref()))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

const HEADER: &str = "{\n  \"format\": \"splice-bench-trajectory-v1\",\n  \"unit\": \"nanoseconds, median over the per-block `samples` counts on the recording container\",\n  \"runs\": [\n";
const FOOTER: &str = "  ]\n}\n";

/// Appends `run_line` to the trajectory file, preserving prior runs. The
/// file is always rewritten from its parsed run lines, so the layout stays
/// canonical regardless of what accumulated.
fn append_run(path: &str, run_line: String) -> std::io::Result<()> {
    let mut runs: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let t = line.trim();
            if t.starts_with("{\"label\"") {
                runs.push(t.trim_end_matches(',').to_string());
            }
        }
        // Refuse to rewrite a file whose runs we failed to parse (e.g. it
        // was pretty-printed by jq or hand-edited off the one-run-per-line
        // layout): rewriting would silently delete the recorded history.
        assert!(
            !(runs.is_empty() && existing.contains("\"runs\"")),
            "{path} has a \"runs\" array this tool cannot parse (expected one \
             run object per line starting with {{\"label\"); restore the \
             canonical layout or pass a fresh --out path"
        );
    }
    runs.push(run_line);
    let mut out = String::from(HEADER);
    for (i, r) in runs.iter().enumerate() {
        out.push_str("    ");
        out.push_str(r);
        if i + 1 < runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(FOOTER);
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = String::from("unlabelled");
    let mut out_path = String::from("BENCH_substrate.json");
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => label = it.next().expect("--label needs a value").clone(),
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--quick" => quick = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    // The label is interpolated into the JSON run line verbatim; restrict
    // it so the trajectory file can never be corrupted into non-JSON.
    assert!(
        !label.is_empty()
            && label
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')),
        "--label must be non-empty [A-Za-z0-9._-], got {label:?}"
    );
    let (micro_samples, run_samples) = if quick { (5, 3) } else { (25, 9) };

    eprintln!("measuring substrate micro-benches ({micro_samples} samples)…");
    let substrate = substrate_metrics(micro_samples);
    eprintln!("measuring e11 scalability ({run_samples} samples)…");
    let e11 = e11_metrics(run_samples);
    eprintln!("measuring e14 sharding ({run_samples} samples)…");
    let e14 = e14_metrics(run_samples);
    eprintln!("measuring e16 reactor ({run_samples} samples)…");
    let e16 = e16_metrics(run_samples);
    eprintln!("measuring e16 threads ({run_samples} samples)…");
    let e16t = e16_threads_metrics(run_samples);
    eprintln!("measuring e18 recovery policies ({run_samples} samples)…");
    let e18 = e18_metrics(run_samples);
    eprintln!("measuring process backend ({run_samples} samples)…");
    let procs = proc_metrics(run_samples);

    let run_line = format!(
        "{{\"label\": \"{label}\", \"method\": \"bench_trajectory\", \"samples\": {{\"substrate\": {micro_samples}, \"experiments\": {run_samples}}}, \"substrate\": {}, \"e11_scalability\": {}, \"e14_sharding\": {}, \"e16_reactor\": {}, \"e16_threads\": {}, \"e18_policies\": {}, \"process\": {}}}",
        json_object(&substrate),
        json_object(&e11),
        json_object(&e14),
        json_object(&e16),
        json_object(&e16t),
        json_object(&e18),
        json_object(&procs),
    );
    append_run(&out_path, run_line).expect("write trajectory file");
    for (k, v) in &substrate {
        println!("substrate/{k:<28} {v:>12} ns");
    }
    for (k, v) in &e11 {
        println!("e11/{k:<34} {v:>12} ns");
    }
    for (k, v) in &e14 {
        println!("e14/{k:<34} {v:>12} ns");
    }
    for (k, v) in &e16 {
        println!("e16/{k:<34} {v:>12} ns");
    }
    for (k, v) in &e16t {
        println!("e16_threads/{k:<26} {v:>12} ns");
    }
    for (k, v) in &e18 {
        println!("e18/{k:<34} {v:>12} ns");
    }
    for (k, v) in &procs {
        println!("process/{k:<30} {v:>12} ns");
    }
    println!("appended run \"{label}\" to {out_path}");
}
