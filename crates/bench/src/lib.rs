//! Shared helpers for the experiment benches.
//!
//! One bench target exists per experiment of DESIGN.md §4 (E1–E12): the
//! benches time the runs whose *measurements* the `experiments` binary
//! prints, so regressions in either speed or protocol behaviour surface in
//! `cargo bench`.

use criterion::Criterion;
use splice_applicative::Workload;
use splice_core::config::RecoveryMode;
use splice_sim::machine::{run_workload, MachineConfig};
use splice_sim::report::RunReport;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;

/// A criterion instance tuned so the full suite stays in the minutes range.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

/// Default experiment machine.
pub fn config(n: u32, mode: RecoveryMode) -> MachineConfig {
    let mut cfg = MachineConfig::new(n);
    cfg.recovery.mode = mode;
    cfg
}

/// Runs a workload fault-free and returns the report.
pub fn fault_free(n: u32, mode: RecoveryMode, w: &Workload) -> RunReport {
    run_workload(config(n, mode), w, &FaultPlan::none())
}

/// A crash plan at `frac` of the fault-free completion time of `base`.
pub fn crash_at_fraction(base: &RunReport, victim: u32, frac: f64) -> FaultPlan {
    FaultPlan::crash_at(
        victim,
        VirtualTime((base.finish.ticks() as f64 * frac) as u64 + 1),
    )
}

/// Asserts a run produced the workload's reference answer — benches must
/// never time a broken run.
pub fn assert_correct(w: &Workload, r: &RunReport) {
    assert!(r.completed, "{} stalled", w.name);
    assert_eq!(
        r.result,
        Some(w.reference_result().unwrap()),
        "{} wrong answer",
        w.name
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_correct_runs() {
        let w = Workload::fib(10);
        let base = fault_free(4, RecoveryMode::Splice, &w);
        assert_correct(&w, &base);
        let plan = crash_at_fraction(&base, 2, 0.5);
        let r = run_workload(config(4, RecoveryMode::Splice), &w, &plan);
        assert_correct(&w, &r);
    }
}
