//! Shared helpers for the experiment benches.
//!
//! One bench target exists per experiment of DESIGN.md §4 (E1–E12): the
//! benches time the runs whose *measurements* the `experiments` binary
//! prints, so regressions in either speed or protocol behaviour surface in
//! `cargo bench`.

use criterion::Criterion;
use splice_applicative::Workload;
use splice_core::config::RecoveryMode;
use splice_sim::machine::{run_workload, MachineConfig};
use splice_sim::report::RunReport;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;

/// A criterion instance tuned so the full suite stays in the minutes range.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}

/// Default experiment machine.
pub fn config(n: u32, mode: RecoveryMode) -> MachineConfig {
    let mut cfg = MachineConfig::new(n);
    cfg.recovery.mode = mode;
    cfg
}

/// Runs a workload fault-free and returns the report.
pub fn fault_free(n: u32, mode: RecoveryMode, w: &Workload) -> RunReport {
    run_workload(config(n, mode), w, &FaultPlan::none())
}

/// A crash plan at `frac` of the fault-free completion time of `base`.
pub fn crash_at_fraction(base: &RunReport, victim: u32, frac: f64) -> FaultPlan {
    FaultPlan::crash_at(
        victim,
        VirtualTime((base.finish.ticks() as f64 * frac) as u64 + 1),
    )
}

/// Asserts a run produced the workload's reference answer — benches must
/// never time a broken run.
pub fn assert_correct(w: &Workload, r: &RunReport) {
    assert!(r.completed, "{} stalled", w.name);
    assert_eq!(
        r.result,
        Some(w.reference_result().unwrap()),
        "{} wrong answer",
        w.name
    );
}

/// The substrate micro-bench evaluator workload. Shared by
/// `benches/substrate.rs` and the `bench_trajectory` bin so both measure
/// the same scenario under the same metric names.
pub fn substrate_workload() -> Workload {
    Workload::fib(15)
}

/// One iteration of the `event_queue_push_pop_10k` scenario: 10k pushes
/// on the 7919-stride schedule, then a full drain.
pub fn event_queue_push_pop_10k() -> u64 {
    let mut q = splice_simnet::queue::EventQueue::new();
    for i in 0..10_000u64 {
        q.push(VirtualTime(i * 7919 % 10_000), i);
    }
    let mut sum = 0u64;
    while let Some((_, e)) = q.pop() {
        sum = sum.wrapping_add(e);
    }
    sum
}

/// One iteration of the `torus_distance_64x64` scenario: the all-pairs
/// hop-distance scan on the 8×8 wrapped mesh.
pub fn torus_distance_64x64() -> u32 {
    let torus = splice_simnet::topology::Topology::Mesh {
        w: 8,
        h: 8,
        wrap: true,
    };
    let mut acc = 0u32;
    for a in 0..64 {
        for b in 0..64 {
            acc += torus.distance(a, b);
        }
    }
    acc
}

/// The E11 scalability workload. Shared by `benches/e11_scalability.rs`
/// and the `bench_trajectory` bin so the criterion bench and the
/// trajectory file always measure the same scenario.
pub fn e11_workload() -> Workload {
    Workload::mapreduce(0, 32, 8)
}

/// The E11 sweep: processor counts × recovery-mode labels.
pub const E11_SWEEP: ([u32; 4], [(&str, RecoveryMode); 2]) = (
    [2, 4, 8, 16],
    [
        ("none", RecoveryMode::None),
        ("splice", RecoveryMode::Splice),
    ],
);

/// The E14 machine: 4×4 shards, 400-tick router, splice recovery,
/// round-robin placement (spreads the tree across every shard, so both
/// victim choices demonstrably hold live work).
pub fn e14_config() -> MachineConfig {
    let mut cfg = MachineConfig::sharded(4, 4, 400);
    cfg.recovery.mode = RecoveryMode::Splice;
    cfg.policy = splice_gradient::Policy::RoundRobin;
    cfg
}

/// The E14 workload.
pub fn e14_workload() -> Workload {
    Workload::fib(13)
}

/// The E14 cases at a given crash instant: processor 1 shares shard 0
/// with the root (intra-shard recovery), processor 13 lives in shard 3
/// (recovery crosses the router), and shard 3 dies wholesale.
pub fn e14_cases(crash: VirtualTime) -> [(&'static str, FaultPlan); 4] {
    [
        ("fault_free", FaultPlan::none()),
        ("intra_shard_crash", FaultPlan::crash_at(1, crash)),
        ("cross_shard_crash", FaultPlan::crash_at(13, crash)),
        ("whole_shard_crash", FaultPlan::crash_shard(3, 4, crash)),
    ]
}

/// The E15 machine: 8 processors behind the batched-delivery bus with the
/// given flush `window`, splice recovery, and an ack timeout sized for the
/// largest window of [`E15_WINDOWS`] (uniform across the sweep so the
/// window is the only variable).
pub fn e15_config(window: u64) -> MachineConfig {
    let max = E15_WINDOWS.iter().copied().max().unwrap_or(0);
    let mut cfg = MachineConfig::batched(8, window);
    cfg.recovery.mode = RecoveryMode::Splice;
    cfg.recovery.ack_timeout = MachineConfig::batched(8, max).recovery.ack_timeout;
    cfg
}

/// The E15 workload.
pub fn e15_workload() -> Workload {
    Workload::fib(13)
}

/// The E15 flush-window sweep.
pub const E15_WINDOWS: [u64; 3] = [0, 200, 2_000];

/// The E16 reactor machine: `engines` cooperative engines pumped on one
/// thread, splice recovery, round-robin placement (cheap to build at
/// thousands of engines and spreads the tree across all of them), load
/// beacons off (4096 idle beacon timers would swamp the ready loop
/// without informing round-robin placement at all).
pub fn e16_config(engines: u32) -> MachineConfig {
    let mut cfg = MachineConfig::new(engines);
    cfg.recovery.mode = RecoveryMode::Splice;
    cfg.policy = splice_gradient::Policy::RoundRobin;
    cfg.recovery.load_beacon_period = 0;
    cfg
}

/// The E16 workload — big enough that every engine count below a few
/// thousand sees real work per engine.
pub fn e16_workload() -> Workload {
    Workload::fib(16)
}

/// The E16 engine-count sweep: OS-thread scale up to "millions of
/// users"-shaped counts no thread-per-processor backend can host.
pub const E16_ENGINES: [u32; 4] = [64, 256, 1024, 4096];

/// The E16-threads machine: the same engines on the multi-core parallel
/// reactor, partitioned across `threads` pumps. Identical knobs to
/// [`e16_config`] so the single-pump reactor and the one-thread parallel
/// reactor are directly comparable.
pub fn e16_threads_config(engines: u32, threads: u32) -> MachineConfig {
    let mut cfg = e16_config(engines);
    cfg.threads = threads;
    cfg
}

/// The E16-threads pump counts.
pub const E16_THREADS: [u32; 3] = [1, 2, 4];

/// The E16-threads engine counts — the top of the single-thread sweep
/// plus a tier no per-engine-thread backend could host.
pub const E16_THREAD_ENGINES: [u32; 2] = [4_096, 16_384];

/// The E18 machine: 8 processors, splice recovery, the given recovery
/// policy. Shared by `benches/e18_policies.rs` and the `bench_trajectory`
/// bin so both time the same policy zoo.
pub fn e18_config(kind: splice_core::policy::PolicyKind) -> MachineConfig {
    let mut cfg = config(8, RecoveryMode::Splice);
    cfg.recovery.policy = splice_core::policy::PolicySpec::of(kind);
    cfg
}

/// The E18 workload.
pub fn e18_workload() -> Workload {
    Workload::fib(14)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_correct_runs() {
        let w = Workload::fib(10);
        let base = fault_free(4, RecoveryMode::Splice, &w);
        assert_correct(&w, &base);
        let plan = crash_at_fraction(&base, 2, 0.5);
        let r = run_workload(config(4, RecoveryMode::Splice), &w, &plan);
        assert_correct(&w, &r);
    }
}
