//! E15 — batched delivery: completion and recovery latency versus the
//! batching bus's flush window on an 8-processor machine.
//!
//! Each window runs a fault-free case and a mid-run single-crash case
//! (splice recovery): the spawn/ack round trips and salvage relays ride
//! the delayed envelopes, so the sweep shows what delivery batching costs
//! the recovery protocol. The scenario (config, workload, windows) is
//! shared with `splice_bench::{e15_config, e15_workload, E15_WINDOWS}` so
//! the experiments bin and this bench always measure the same thing.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_bench::{assert_correct, criterion as tuned, e15_config, e15_workload, E15_WINDOWS};
use splice_sim::machine::run_workload;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_batching");
    let w = e15_workload();

    for window in E15_WINDOWS {
        let base = run_workload(e15_config(window), &w, &FaultPlan::none());
        assert_correct(&w, &base);
        let crash = VirtualTime(base.finish.ticks() / 2);

        g.bench_function(format!("w{window}_fault_free"), |b| {
            b.iter(|| {
                let r = run_workload(e15_config(window), &w, &FaultPlan::none());
                assert_correct(&w, &r);
                (r.finish, r.batch_envelopes)
            })
        });
        g.bench_function(format!("w{window}_crash"), |b| {
            b.iter(|| {
                let plan = FaultPlan::crash_at(2, crash);
                let r = run_workload(e15_config(window), &w, &plan);
                assert_correct(&w, &r);
                (r.finish, r.batch_envelopes)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
