//! E16 — the cooperative reactor at scale: completion and recovery
//! latency versus engine count, 64 → 4096 engines on one thread.
//!
//! Each engine count runs a fault-free case and a mid-run single-crash
//! case (splice recovery). The scenario (config, workload, sweep) is
//! shared with `splice_bench::{e16_config, e16_workload, E16_ENGINES}` so
//! the experiments bin and this bench always measure the same thing.
//! Machine construction is part of the measured body — at 4096 engines
//! the build cost is itself a scaling property worth tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_bench::{assert_correct, criterion as tuned, e16_config, e16_workload, E16_ENGINES};
use splice_sim::reactor::run_reactor;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_reactor");
    let w = e16_workload();

    for engines in E16_ENGINES {
        let base = run_reactor(e16_config(engines), &w, &FaultPlan::none());
        assert_correct(&w, &base);
        let crash = VirtualTime((base.finish.ticks() / 2).max(1));

        g.bench_function(format!("n{engines}_fault_free"), |b| {
            b.iter(|| {
                let r = run_reactor(e16_config(engines), &w, &FaultPlan::none());
                assert_correct(&w, &r);
                r.finish
            })
        });
        g.bench_function(format!("n{engines}_crash"), |b| {
            b.iter(|| {
                let plan = FaultPlan::crash_at(engines / 2, crash);
                let r = run_reactor(e16_config(engines), &w, &plan);
                assert_correct(&w, &r);
                r.finish
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
