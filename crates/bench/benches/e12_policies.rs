//! E12 — dynamic allocation policies (§3.3): the gradient model against
//! random, round-robin and least-loaded placement on a torus.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, criterion as tuned};
use splice_core::config::RecoveryMode;
use splice_gradient::Policy;
use splice_sim::machine::run_workload;
use splice_simnet::fault::FaultPlan;
use splice_simnet::topology::Topology;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_policies");
    let w = Workload::mapreduce(0, 32, 8);
    for policy in Policy::ALL {
        g.bench_function(policy.name(), |b| {
            b.iter(|| {
                let mut cfg = config(16, RecoveryMode::Splice);
                cfg.topology = Topology::Mesh {
                    w: 4,
                    h: 4,
                    wrap: true,
                };
                cfg.policy = policy;
                let r = run_workload(cfg, &w, &FaultPlan::none());
                assert_correct(&w, &r);
                (r.finish, r.work_imbalance() as u64)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
