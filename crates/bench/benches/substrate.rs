//! Substrate micro-benches: the evaluators and the DES kernel — the
//! foundations every experiment's wall-clock rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::eval::eval_call;
use splice_applicative::wave::run_local;
use splice_applicative::Workload;
use splice_bench::criterion as tuned;
use splice_simnet::queue::EventQueue;
use splice_simnet::time::VirtualTime;
use splice_simnet::topology::Topology;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");

    let w = Workload::fib(15);
    g.bench_function("reference_eval_fib15", |b| {
        b.iter(|| eval_call(&w.program, w.entry, &w.args).unwrap())
    });
    g.bench_function("wave_eval_local_fib15", |b| {
        b.iter(|| run_local(&w.program, w.entry, &w.args).unwrap())
    });

    g.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(VirtualTime(i * 7919 % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });

    let torus = Topology::Mesh {
        w: 8,
        h: 8,
        wrap: true,
    };
    g.bench_function("torus_distance_64x64", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0..64 {
                for bb in 0..64 {
                    acc += torus.distance(a, bb);
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
