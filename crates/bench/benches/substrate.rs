//! Substrate micro-benches: the evaluators and the DES kernel — the
//! foundations every experiment's wall-clock rests on. Scenario bodies
//! are shared with the `bench_trajectory` bin via `splice_bench` so the
//! trajectory file's `substrate` medians always measure exactly what this
//! bench measures.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::eval::eval_call;
use splice_applicative::wave::run_local;
use splice_bench::{
    criterion as tuned, event_queue_push_pop_10k, substrate_workload, torus_distance_64x64,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");

    let w = substrate_workload();
    g.bench_function("reference_eval_fib15", |b| {
        b.iter(|| eval_call(&w.program, w.entry, &w.args).unwrap())
    });
    g.bench_function("wave_eval_local_fib15", |b| {
        b.iter(|| run_local(&w.program, w.entry, &w.args).unwrap())
    });

    g.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(event_queue_push_pop_10k)
    });

    g.bench_function("torus_distance_64x64", |b| b.iter(torus_distance_64x64));
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
