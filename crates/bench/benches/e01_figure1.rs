//! E1 — the Figure-1 scenario end to end: build the tree on processors
//! A–D, crash B at the snapshot instant, recover.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_bench::criterion as tuned;
use splice_core::config::{CheckpointFilter, RecoveryMode};
use splice_sim::figure1;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e01_figure1");
    g.bench_function("rollback_topmost", |b| {
        b.iter(|| {
            let out = figure1::run(RecoveryMode::Rollback, CheckpointFilter::Topmost);
            assert!(out.correct());
            out.report.finish
        })
    });
    g.bench_function("rollback_all", |b| {
        b.iter(|| {
            let out = figure1::run(RecoveryMode::Rollback, CheckpointFilter::All);
            assert!(out.correct());
            out.report.finish
        })
    });
    g.bench_function("splice", |b| {
        b.iter(|| {
            let out = figure1::run(RecoveryMode::Splice, CheckpointFilter::Topmost);
            assert!(out.correct());
            out.report.finish
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
