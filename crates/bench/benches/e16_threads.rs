//! E16 (threads) — the multi-core parallel reactor: completion wall-clock
//! across a pumps × engines sweep, with a mid-run massacre case at the
//! largest count.
//!
//! The scenario (config, workload, sweep) is shared with
//! `splice_bench::{e16_threads_config, E16_THREADS, E16_THREAD_ENGINES}`
//! so the experiments bin and the `bench_trajectory` trajectory file
//! always measure the same thing. Machine construction is part of the
//! measured body — partitioning tens of thousands of engines across pumps
//! is itself a scaling property. Speedup over the single-thread rows is a
//! property of the host: on a single-core container the extra pumps only
//! buy barrier overhead, and the numbers say so honestly.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_bench::{
    assert_correct, criterion as tuned, e16_threads_config, e16_workload, E16_THREADS,
    E16_THREAD_ENGINES,
};
use splice_sim::parallel::run_parallel_reactor;
use splice_simnet::fault::{FaultKind, FaultPlan};
use splice_simnet::time::VirtualTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_threads");
    let w = e16_workload();

    for engines in E16_THREAD_ENGINES {
        for threads in E16_THREADS {
            g.bench_function(format!("t{threads}_n{engines}_fault_free"), |b| {
                b.iter(|| {
                    let r = run_parallel_reactor(
                        e16_threads_config(engines, threads),
                        &w,
                        &FaultPlan::none(),
                    );
                    assert_correct(&w, &r);
                    r.finish
                })
            });
        }
    }

    // One recovery case: an entire pump's partition dies mid-run and the
    // survivors splice the orphaned work back together across pump
    // boundaries (stealing rebalances what the dead pump left behind).
    let engines = E16_THREAD_ENGINES[0];
    let threads = *E16_THREADS.last().unwrap();
    let base = run_parallel_reactor(e16_threads_config(engines, threads), &w, &FaultPlan::none());
    assert_correct(&w, &base);
    let crash = VirtualTime((base.finish.ticks() / 2).max(1));
    let victims = engines - engines / threads..engines;
    g.bench_function(format!("t{threads}_n{engines}_pump_massacre"), |b| {
        b.iter(|| {
            let mut plan = FaultPlan::none();
            for v in victims.clone() {
                plan = plan.and(v, crash, FaultKind::Crash);
            }
            let r = run_parallel_reactor(e16_threads_config(engines, threads), &w, &plan);
            assert_correct(&w, &r);
            r.finish
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
