//! E11 — scaling over processor counts with checkpointing on and off (the
//! Rediflow context of reference [9]). The sweep and workload are shared
//! with the `bench_trajectory` bin via `splice_bench::{e11_workload,
//! E11_SWEEP}` so the trajectory file stays comparable to this bench.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_bench::{assert_correct, config, criterion as tuned, e11_workload, E11_SWEEP};
use splice_sim::machine::run_workload;
use splice_simnet::fault::FaultPlan;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_scalability");
    let w = e11_workload();
    let (procs, modes) = E11_SWEEP;
    for n in procs {
        for (label, mode) in modes {
            g.bench_function(format!("p{n}_{label}"), |b| {
                b.iter(|| {
                    let r = run_workload(config(n, mode), &w, &FaultPlan::none());
                    assert_correct(&w, &r);
                    r.finish
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
