//! E11 — scaling over processor counts with checkpointing on and off (the
//! Rediflow context of reference [9]).

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, criterion as tuned};
use splice_core::config::RecoveryMode;
use splice_sim::machine::run_workload;
use splice_simnet::fault::FaultPlan;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_scalability");
    let w = Workload::mapreduce(0, 32, 8);
    for n in [2u32, 4, 8, 16] {
        for (label, mode) in [
            ("none", RecoveryMode::None),
            ("splice", RecoveryMode::Splice),
        ] {
            g.bench_function(format!("p{n}_{label}"), |b| {
                b.iter(|| {
                    let r = run_workload(config(n, mode), &w, &FaultPlan::none());
                    assert_correct(&w, &r);
                    r.finish
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
