//! E14 — the sharded substrate: cross-shard vs intra-shard recovery
//! latency on a 4×4 sharded machine with a 400-tick inter-shard router.
//!
//! The victim determines what recovery has to cross: a processor in the
//! root's own shard recovers over intra-shard links, a processor in the
//! farthest shard recovers through the router, and a whole-shard crash
//! forces every reissue and salvage across the boundary.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, criterion as tuned};
use splice_core::config::RecoveryMode;
use splice_gradient::Policy;
use splice_sim::machine::{run_workload, MachineConfig};
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;

fn sharded_config() -> MachineConfig {
    let mut cfg = MachineConfig::sharded(4, 4, 400);
    cfg.recovery.mode = RecoveryMode::Splice;
    // Round-robin spreads the tree across every shard, so both victim
    // choices demonstrably hold live work.
    cfg.policy = Policy::RoundRobin;
    cfg
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_sharding");
    let w = Workload::fib(13);
    let base = run_workload(sharded_config(), &w, &FaultPlan::none());
    assert_correct(&w, &base);
    let crash = VirtualTime(base.finish.ticks() / 2);

    g.bench_function("fault_free", |b| {
        b.iter(|| {
            let r = run_workload(sharded_config(), &w, &FaultPlan::none());
            assert_correct(&w, &r);
            (r.finish, r.shard_msgs_inter)
        })
    });
    // Processor 1 shares shard 0 with the root: intra-shard recovery.
    g.bench_function("intra_shard_crash", |b| {
        b.iter(|| {
            let r = run_workload(sharded_config(), &w, &FaultPlan::crash_at(1, crash));
            assert_correct(&w, &r);
            (r.finish, r.shard_msgs_inter)
        })
    });
    // Processor 13 lives in shard 3: recovery crosses the router.
    g.bench_function("cross_shard_crash", |b| {
        b.iter(|| {
            let r = run_workload(sharded_config(), &w, &FaultPlan::crash_at(13, crash));
            assert_correct(&w, &r);
            (r.finish, r.shard_msgs_inter)
        })
    });
    // Shard 3 dies wholesale: splice recovery entirely across the router.
    g.bench_function("whole_shard_crash", |b| {
        b.iter(|| {
            let r = run_workload(sharded_config(), &w, &FaultPlan::crash_shard(3, 4, crash));
            assert_correct(&w, &r);
            (r.finish, r.shard_msgs_inter)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
