//! E14 — the sharded substrate: cross-shard vs intra-shard recovery
//! latency on a 4×4 sharded machine with a 400-tick inter-shard router.
//!
//! The victim determines what recovery has to cross: a processor in the
//! root's own shard recovers over intra-shard links, a processor in the
//! farthest shard recovers through the router, and a whole-shard crash
//! forces every reissue and salvage across the boundary. The scenario
//! (config, workload, victims) is shared with the `bench_trajectory` bin
//! via `splice_bench::{e14_config, e14_workload, e14_cases}` so the
//! trajectory file stays comparable to this bench.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_bench::{assert_correct, criterion as tuned, e14_cases, e14_config, e14_workload};
use splice_sim::machine::run_workload;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_sharding");
    let w = e14_workload();
    let base = run_workload(e14_config(), &w, &FaultPlan::none());
    assert_correct(&w, &base);
    let crash = VirtualTime(base.finish.ticks() / 2);

    for (name, plan) in e14_cases(crash) {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = run_workload(e14_config(), &w, &plan);
                assert_correct(&w, &r);
                (r.finish, r.shard_msgs_inter)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
