//! E5 — Figure 5's ordering mix: a crash-instant sweep point under splice,
//! classifying how salvage landed (before vs after the twin's demand).

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, crash_at_fraction, criterion as tuned, fault_free};
use splice_core::config::RecoveryMode;
use splice_sim::machine::run_workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e05_cases");
    let w = Workload::fib(13);
    let base = fault_free(8, RecoveryMode::Splice, &w);
    for frac in [0.25f64, 0.5, 0.75] {
        let plan = crash_at_fraction(&base, 5, frac);
        g.bench_function(format!("crash_at_{}pct", (frac * 100.0) as u32), |b| {
            b.iter(|| {
                let r = run_workload(config(8, RecoveryMode::Splice), &w, &plan);
                assert_correct(&w, &r);
                (r.stats.salvage_before_spawn, r.stats.salvage_after_spawn)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
