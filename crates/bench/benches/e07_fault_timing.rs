//! E7 — recovery cost vs fault instant ("if a fault happens at a later
//! stage of the evaluation, the rollback recovery may be costly"): the
//! fault-fraction sweep, one bench point per (fraction, algorithm).

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, crash_at_fraction, criterion as tuned, fault_free};
use splice_core::config::RecoveryMode;
use splice_sim::machine::run_workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e07_fault_timing");
    let w = Workload::fib(14);
    let base = fault_free(8, RecoveryMode::Splice, &w);
    for frac in [0.2f64, 0.5, 0.8] {
        let plan = crash_at_fraction(&base, 7, frac);
        for mode in [RecoveryMode::Rollback, RecoveryMode::Splice] {
            g.bench_function(format!("{mode:?}_at_{}pct", (frac * 100.0) as u32), |b| {
                b.iter(|| {
                    let r = run_workload(config(8, mode), &w, &plan);
                    assert_correct(&w, &r);
                    r.finish
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
