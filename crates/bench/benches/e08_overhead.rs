//! E8 — fault-free overhead of functional checkpointing (§2): identical
//! workload with no fault tolerance, rollback checkpointing, and splice
//! checkpointing; the deltas are the protocol's normal-operation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, criterion as tuned};
use splice_core::config::RecoveryMode;
use splice_sim::machine::run_workload;
use splice_simnet::fault::FaultPlan;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e08_overhead");
    let w = Workload::dcsum(0, 128);
    for (name, mode) in [
        ("none", RecoveryMode::None),
        ("rollback", RecoveryMode::Rollback),
        ("splice", RecoveryMode::Splice),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = run_workload(config(8, mode), &w, &FaultPlan::none());
                assert_correct(&w, &r);
                (r.finish, r.ckpt_stored)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
