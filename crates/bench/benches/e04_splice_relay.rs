//! E4 — grandparent relay and twin inheritance (Figures 2–3): a mid-run
//! crash under splice recovery, timed end to end, with the salvage path
//! exercised on every iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, crash_at_fraction, criterion as tuned, fault_free};
use splice_core::config::RecoveryMode;
use splice_sim::machine::run_workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e04_splice_relay");
    let w = Workload::fib(13);
    let base = fault_free(6, RecoveryMode::Splice, &w);
    let plan = crash_at_fraction(&base, 4, 0.5);

    g.bench_function("crash_mid_run_splice", |b| {
        b.iter(|| {
            let r = run_workload(config(6, RecoveryMode::Splice), &w, &plan);
            assert_correct(&w, &r);
            assert!(r.stats.salvaged_results > 0, "salvage path must fire");
            r.finish
        })
    });
    g.bench_function("same_crash_rollback", |b| {
        b.iter(|| {
            let r = run_workload(config(6, RecoveryMode::Rollback), &w, &plan);
            assert_correct(&w, &r);
            r.finish
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
