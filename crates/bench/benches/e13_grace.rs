//! E13 — the splice grace-period extension: eager twin creation vs
//! deferred, on a mid-run crash.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, crash_at_fraction, criterion as tuned, fault_free};
use splice_core::config::RecoveryMode;
use splice_sim::machine::run_workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_grace");
    let w = Workload::mapreduce(0, 32, 8);
    let base = fault_free(8, RecoveryMode::Splice, &w);
    let plan = crash_at_fraction(&base, 6, 0.5);
    for grace in [0u64, 2_000, 10_000] {
        g.bench_function(format!("grace_{grace}"), |b| {
            b.iter(|| {
                let mut cfg = config(8, RecoveryMode::Splice);
                cfg.recovery.splice_grace = grace;
                let r = run_workload(cfg, &w, &plan);
                assert_correct(&w, &r);
                (r.finish, r.stats.salvage_before_spawn)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
