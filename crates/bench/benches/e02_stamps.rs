//! E2 — level-stamp operations (§3.1): child stamping, ancestry
//! comparison, and topmost (minimal antichain) selection, the primitives
//! every recovery decision rests on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use splice_bench::criterion as tuned;
use splice_core::stamp::LevelStamp;

/// A deterministic bag of stamps shaped like a real call tree fragment.
fn stamp_bag(n: usize) -> Vec<LevelStamp> {
    let mut out = Vec::with_capacity(n);
    let mut frontier = vec![LevelStamp::root().child(1)];
    let mut digit = 1u32;
    while out.len() < n {
        let parent = frontier[out.len() % frontier.len()].clone();
        digit = digit % 3 + 1;
        let child = parent.child(digit);
        frontier.push(child.clone());
        out.push(child);
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e02_stamps");
    let bag = stamp_bag(512);

    g.bench_function("child_stamping", |b| {
        let parent = LevelStamp::from_digits(&[1, 2, 3, 4, 5, 6]);
        let mut d = 0u32;
        b.iter(|| {
            d = d % 64 + 1;
            parent.child(d)
        })
    });

    g.bench_function("ancestry_compare_512", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for a in &bag {
                for b_ in bag.iter().take(16) {
                    if b_.is_ancestor_of(a) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });

    g.bench_function("topmost_512", |b| {
        b.iter_batched(|| bag.clone(), LevelStamp::topmost, BatchSize::SmallInput)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
