//! E10 — replicated task packets with majority voting (§5.3), with one
//! corrupting processor in the machine. `n=1` runs unprotected (and
//! wrong); replicated groups mask the corruption; wait-all pays the
//! synchronous-redundancy latency.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{config, criterion as tuned};
use splice_core::config::{RecoveryMode, ReplicaSpec, VoteMode};
use splice_gradient::Policy;
use splice_sim::machine::run_workload;
use splice_simnet::fault::{FaultEvent, FaultKind, FaultPlan};
use splice_simnet::time::VirtualTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_replication");
    let w = Workload::mapreduce(0, 16, 8);
    let mapred = w.program.lookup("mapred").unwrap();
    let expected = w.reference_result().unwrap();
    let corrupt = FaultPlan {
        events: vec![FaultEvent {
            at: VirtualTime(0),
            victim: 0,
            kind: FaultKind::Corrupt,
        }],
        root_events: Vec::new(),
    };
    for (name, n, vote) in [
        ("n1_unprotected", 1u32, VoteMode::Majority),
        ("n3_majority", 3, VoteMode::Majority),
        ("n3_wait_all", 3, VoteMode::WaitAll),
        ("n5_majority", 5, VoteMode::Majority),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = config(8, RecoveryMode::Splice);
                cfg.policy = Policy::RoundRobin;
                cfg.recovery
                    .replicate
                    .insert(mapred, ReplicaSpec { n, vote });
                let r = run_workload(cfg, &w, &corrupt);
                assert!(r.completed);
                let correct = r.result == Some(expected.clone());
                // Voting masks the corruption; n=1 must NOT (that is the
                // point of the experiment).
                assert_eq!(correct, n > 1, "{name}");
                r.finish
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
