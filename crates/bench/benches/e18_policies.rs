//! E18 — the recovery-policy zoo: eager reissue vs lazy rebuild-on-demand
//! vs incremental multi-checkpointing, each timed fault-free and through a
//! mid-run crash on the same 8-processor splice machine.
//!
//! The policies trade recovery cost, never the answer, so every iteration
//! asserts the reference result. The scenario (config, workload, victim)
//! is shared with the `bench_trajectory` bin via
//! `splice_bench::{e18_config, e18_workload}` so the trajectory file stays
//! comparable to this bench.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_bench::{assert_correct, criterion as tuned, e18_config, e18_workload};
use splice_core::policy::PolicyKind;
use splice_sim::machine::run_workload;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e18_policies");
    let w = e18_workload();

    for kind in PolicyKind::ALL {
        let base = run_workload(e18_config(kind), &w, &FaultPlan::none());
        assert_correct(&w, &base);
        let crash = FaultPlan::crash_at(7, VirtualTime(base.finish.ticks() / 2));
        for (case, plan) in [("fault_free", FaultPlan::none()), ("mid_crash", crash)] {
            g.bench_function(format!("{}_{case}", kind.label()), |b| {
                b.iter(|| {
                    let r = run_workload(e18_config(kind), &w, &plan);
                    assert_correct(&w, &r);
                    (r.finish, r.stats.reissues, r.stats.recheckpoints)
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
