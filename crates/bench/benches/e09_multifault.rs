//! E9 — multiple faults (§5.2): independent-branch double faults, and the
//! parent+grandparent simultaneous death with ancestor chains of depth 2
//! (stranding) vs 3 (rescue).

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, criterion as tuned, fault_free};
use splice_core::config::RecoveryMode;
use splice_sim::machine::run_workload;
use splice_simnet::fault::{FaultKind, FaultPlan};
use splice_simnet::time::VirtualTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e09_multifault");
    let w = Workload::mapreduce(0, 32, 8);
    let base = fault_free(12, RecoveryMode::Splice, &w);
    let t = base.finish.ticks();
    let double =
        FaultPlan::crash_at(2, VirtualTime(t / 3)).and(9, VirtualTime(t / 3), FaultKind::Crash);
    for mode in [RecoveryMode::Rollback, RecoveryMode::Splice] {
        g.bench_function(format!("{mode:?}_two_branches"), |b| {
            b.iter(|| {
                let r = run_workload(config(12, mode), &w, &double);
                assert_correct(&w, &r);
                r.finish
            })
        });
    }
    for depth in [2usize, 3] {
        g.bench_function(format!("chain_depth_{depth}_double_fault"), |b| {
            b.iter(|| {
                let mut cfg = config(12, RecoveryMode::Splice);
                cfg.recovery.ancestor_depth = depth;
                let r = run_workload(cfg, &w, &double);
                assert_correct(&w, &r);
                r.stats.stranded_orphans
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
