//! E3 — checkpoint table operations (§3.2): the store/ack/retire lifecycle
//! and recovery-candidate selection with the topmost rule vs. reissue-all.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use splice_applicative::wave::Demand;
use splice_applicative::{FnId, Value};
use splice_bench::criterion as tuned;
use splice_core::checkpoint::CheckpointTable;
use splice_core::config::CheckpointFilter;
use splice_core::ids::{ProcId, TaskAddr, TaskKey};
use splice_core::packet::{TaskLink, TaskPacket};
use splice_core::stamp::LevelStamp;

fn packet(stamp: LevelStamp) -> TaskPacket {
    TaskPacket {
        stamp,
        demand: Demand::new(FnId(0), vec![Value::Int(7)]),
        parent: TaskLink::new(TaskAddr::new(ProcId(0), TaskKey(0)), LevelStamp::root()),
        ancestors: vec![TaskLink::super_root()],
        incarnation: 0,
        hops: 0,
        replica: None,
        under_replica: false,
    }
}

/// A table with `n` checkpoints spread over 8 destinations, with nested
/// subtrees so the topmost rule has real work to do.
fn loaded_table(n: usize) -> CheckpointTable {
    let mut t = CheckpointTable::new();
    let mut stamp = LevelStamp::root().child(1);
    for i in 0..n {
        if i % 4 == 0 {
            stamp = LevelStamp::root().child((i % 97 + 1) as u32);
        } else {
            stamp = stamp.child((i % 3 + 1) as u32);
        }
        let owner = TaskKey((i % 64) as u64);
        t.store(owner, packet(stamp.clone()));
        t.on_ack(owner, &stamp, ProcId((i % 8) as u32));
    }
    t
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e03_checkpoint_table");

    g.bench_function("store_ack_retire_cycle", |b| {
        b.iter_batched(
            CheckpointTable::new,
            |mut t| {
                let s = LevelStamp::from_digits(&[1, 2, 3]);
                t.store(TaskKey(1), packet(s.clone()));
                t.on_ack(TaskKey(1), &s, ProcId(3));
                t.retire(TaskKey(1), &s);
                t
            },
            BatchSize::SmallInput,
        )
    });

    let table = loaded_table(1024);
    g.bench_function("recover_topmost_1024", |b| {
        b.iter(|| {
            table
                .recover_candidates(ProcId(3), CheckpointFilter::Topmost)
                .len()
        })
    });
    g.bench_function("recover_all_1024", |b| {
        b.iter(|| {
            table
                .recover_candidates(ProcId(3), CheckpointFilter::All)
                .len()
        })
    });

    // The topmost rule reduces the reissue set — report the ratio once so
    // the bench log doubles as the E3 data point.
    let top = table
        .recover_candidates(ProcId(3), CheckpointFilter::Topmost)
        .len();
    let all = table
        .recover_candidates(ProcId(3), CheckpointFilter::All)
        .len();
    assert!(top <= all);
    println!("e03: topmost reissues {top} of {all} live checkpoints for the dead destination");
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
