//! E6 — residue-freedom (Figures 6–7): crash at awkward instants around
//! the spawn state machine, timed per recovery mode; every iteration
//! re-checks the answer.

use criterion::{criterion_group, criterion_main, Criterion};
use splice_applicative::Workload;
use splice_bench::{assert_correct, config, criterion as tuned, fault_free};
use splice_core::config::RecoveryMode;
use splice_sim::machine::run_workload;
use splice_simnet::fault::FaultPlan;
use splice_simnet::time::VirtualTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e06_residue");
    let w = Workload::dcsum(0, 64);
    for mode in [RecoveryMode::Rollback, RecoveryMode::Splice] {
        let base = fault_free(6, mode, &w);
        // A very early crash stresses states a–c (packet in flight, unacked).
        let early = FaultPlan::crash_at(4, VirtualTime(base.finish.ticks() / 50 + 1));
        // A late crash stresses states e–g (results in flight).
        let late = FaultPlan::crash_at(4, VirtualTime(base.finish.ticks() * 9 / 10));
        g.bench_function(format!("{mode:?}_early_crash"), |b| {
            b.iter(|| {
                let r = run_workload(config(6, mode), &w, &early);
                assert_correct(&w, &r);
                r.finish
            })
        });
        g.bench_function(format!("{mode:?}_late_crash"), |b| {
            b.iter(|| {
                let r = run_workload(config(6, mode), &w, &late);
                assert_correct(&w, &r);
                r.finish
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench
}
criterion_main!(benches);
