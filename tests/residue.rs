//! §4.3.2 residue effects (experiment E6, Figures 6–7).
//!
//! "A residue-free fault tolerant measure must assure that tasks G and C
//! are not affected by the failure of P from state a through state g."
//!
//! The spawn lifecycle states (packet formed / in flight / acked / child
//! executing / result in flight / result delivered) are all crossed by
//! sweeping the crash instant at fine granularity: whatever state the
//! fault interrupts, the answer must be unchanged.

use splice::prelude::*;

fn sweep(mode: RecoveryMode, w: &Workload, steps: u64, victim: u32) {
    let mut cfg = MachineConfig::new(6);
    cfg.recovery.mode = mode;
    let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
    assert!(fault_free.completed);
    let total = fault_free.finish.ticks();
    let expected = w.reference_result().unwrap();
    for i in 0..steps {
        let crash = VirtualTime(total * i / steps + 1);
        let r = run_workload(cfg.clone(), w, &FaultPlan::crash_at(victim, crash));
        assert!(r.completed, "{mode:?} {} crash@{crash} stalled", w.name);
        assert_eq!(
            r.result,
            Some(expected.clone()),
            "{mode:?} {} crash@{crash}: residue!",
            w.name
        );
    }
}

#[test]
fn splice_is_residue_free_across_all_states() {
    sweep(RecoveryMode::Splice, &Workload::fib(11), 24, 4);
}

#[test]
fn rollback_is_residue_free_across_all_states() {
    sweep(RecoveryMode::Rollback, &Workload::fib(11), 24, 4);
}

#[test]
fn residue_freedom_holds_for_list_heavy_programs() {
    // Different value shapes cross the wire (lists, not just ints).
    sweep(RecoveryMode::Splice, &Workload::quicksort(18, 9), 12, 3);
    sweep(RecoveryMode::Rollback, &Workload::quicksort(18, 9), 12, 3);
}

#[test]
fn state_b_unacked_spawn_is_reissued_by_timeout() {
    // Kill the victim very early so spawns towards it are in state b
    // (sent, never acked): the ack timeout must reissue them "as if the
    // first invocation of P did not take place".
    let w = Workload::fib(12);
    let mut cfg = MachineConfig::new(4);
    cfg.recovery.mode = RecoveryMode::Splice;
    // Slow detector: force the timeout path to do the work.
    cfg.detector.notice_delay = 60_000;
    cfg.detector.bounce_delay = 50_000;
    let r = run_workload(cfg, &w, &FaultPlan::crash_at(2, VirtualTime(40)));
    assert!(r.completed, "stalled without detector help");
    assert_eq!(r.result, Some(w.reference_result().unwrap()));
    assert!(
        r.stats.ack_timeouts > 0,
        "recovery must have used the state-b timeout path: {}",
        r.stats
    );
}
