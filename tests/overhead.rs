//! §2 fault-free overhead claims (experiment E8).
//!
//! "Unlike conventional checkpoint schemes, functional checkpointing is
//! concise, distributed and asynchronous. ... The thrust of these recovery
//! models is to minimize the overhead while the system is in a normal,
//! fault-free operation."

use splice::prelude::*;
use splice::sim::baseline::GlobalCheckpointModel;

#[test]
fn functional_checkpointing_costs_little_when_nothing_fails() {
    for w in [Workload::fib(13), Workload::dcsum(0, 128)] {
        let none = run_workload(MachineConfig::new(8), &w, &FaultPlan::none());
        // MachineConfig::new defaults to splice; build explicit configs.
        let mut cfg_none = MachineConfig::new(8);
        cfg_none.recovery.mode = RecoveryMode::None;
        let mut cfg_splice = MachineConfig::new(8);
        cfg_splice.recovery.mode = RecoveryMode::Splice;
        let _ = none;
        let r_none = run_workload(cfg_none, &w, &FaultPlan::none());
        let r_splice = run_workload(cfg_splice, &w, &FaultPlan::none());
        let slowdown = r_splice.finish.ticks() as f64 / r_none.finish.ticks().max(1) as f64;
        assert!(
            slowdown < 1.10,
            "{}: fault-free splice slowdown {slowdown:.3} exceeds 10%",
            w.name
        );
        // Identical answers, of course.
        assert_eq!(r_none.result, r_splice.result);
    }
}

#[test]
fn checkpoints_are_retained_on_peers_and_fully_retired() {
    let mut cfg = MachineConfig::new(8);
    cfg.recovery.mode = RecoveryMode::Splice;
    let r = run_workload(cfg, &Workload::fib(12), &FaultPlan::none());
    assert!(r.ckpt_stored > 0, "checkpoints were stored");
    assert!(
        r.ckpt_peak_entries > 0 && r.ckpt_peak_entries < r.ckpt_stored as usize,
        "retirement keeps the table bounded: peak {} vs stored {}",
        r.ckpt_peak_entries,
        r.ckpt_stored
    );
}

#[test]
fn periodic_global_checkpointing_model_costs_more() {
    // The analytic model of the classical scheme charges pauses even in
    // fault-free runs; functional checkpointing's measured overhead stays
    // below any of the modelled intervals.
    let w = Workload::dcsum(0, 256);
    let mut cfg_none = MachineConfig::new(8);
    cfg_none.recovery.mode = RecoveryMode::None;
    let mut cfg_splice = MachineConfig::new(8);
    cfg_splice.recovery.mode = RecoveryMode::Splice;
    let base = run_workload(cfg_none, &w, &FaultPlan::none());
    let splice = run_workload(cfg_splice, &w, &FaultPlan::none());
    let functional_overhead = splice.finish.ticks().saturating_sub(base.finish.ticks());
    for divisor in [20u64, 10, 5] {
        let gcp = GlobalCheckpointModel::with_interval((base.finish.ticks() / divisor).max(1));
        assert!(
            gcp.overhead(&base) > functional_overhead,
            "global checkpointing (interval T/{divisor}) must cost more: {} vs {}",
            gcp.overhead(&base),
            functional_overhead
        );
    }
}

#[test]
fn no_checkpoint_messages_beyond_protocol_basics_in_none_mode() {
    // Mode None sends exactly spawn/ack/result/load traffic — no salvage,
    // no aborts, no reissues.
    let mut cfg = MachineConfig::new(6);
    cfg.recovery.mode = RecoveryMode::None;
    let r = run_workload(cfg, &Workload::fib(11), &FaultPlan::none());
    assert_eq!(r.stats.reissues, 0);
    assert_eq!(r.stats.salvaged_results, 0);
    assert_eq!(r.stats.aborts_sent, 0);
    assert_eq!(r.ckpt_stored, 0);
}
