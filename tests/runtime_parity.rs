//! Driver parity: the simulator, the threaded runtime and the cooperative
//! reactor run the *same* engine under the *same* shared driver loop
//! (`splice-harness`), so for the same workload and the same fault plan
//! they must produce the same answers — fault-free, under crashes with
//! splice recovery, and under corruption with replicated voting.
//!
//! `splice::runtime::run_plan` maps a simulator [`FaultPlan`]'s virtual
//! fault times onto the wall clock, so one plan literally drives all three
//! [`Substrate`](splice::harness::Substrate) implementations. (Exhaustive
//! sim-vs-reactor plan coverage lives in `tests/backend_fuzz.rs`.)

use splice::prelude::*;
use splice::runtime::{run as run_threads, run_plan, CrashAt, RuntimeConfig};
use std::time::Duration;

fn sim_cfg(mode: RecoveryMode) -> MachineConfig {
    let mut cfg = MachineConfig::new(4);
    cfg.policy = Policy::RoundRobin;
    cfg.recovery.mode = mode;
    cfg
}

fn rt_cfg(mode: RecoveryMode) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(4);
    cfg.recovery.mode = mode;
    cfg
}

/// Feeds the identical workload + fault plan through all three substrates
/// and checks every `result` against the reference evaluator (and
/// therefore against the others).
fn both_agree_on_plan(w: &Workload, mode: RecoveryMode, plan: &FaultPlan) {
    let expected = w.reference_result().unwrap();

    let sim_report = run_workload(sim_cfg(mode), w, plan);
    assert!(sim_report.completed, "sim stalled: {}", w.name);
    assert_eq!(sim_report.result, Some(expected.clone()), "sim: {}", w.name);

    let re_report = run_reactor(sim_cfg(mode), w, plan);
    assert!(re_report.completed, "reactor stalled: {}", w.name);
    assert_eq!(
        re_report.result,
        Some(expected.clone()),
        "reactor: {}",
        w.name
    );

    let rt_report = run_plan(rt_cfg(mode), w, plan);
    assert_eq!(rt_report.result, Some(expected), "threads: {}", w.name);
    assert_eq!(
        sim_report.result, rt_report.result,
        "substrates disagree: {}",
        w.name
    );
}

#[test]
fn parity_fault_free() {
    for w in [
        Workload::fib(12),
        Workload::dcsum(0, 64),
        Workload::quicksort(20, 11),
    ] {
        both_agree_on_plan(&w, RecoveryMode::Splice, &FaultPlan::none());
    }
}

#[test]
fn parity_splice_recovery_same_plan() {
    // Tick 400 = 10ms of wall clock under the default 25µs time unit:
    // early enough that processor 2 still holds live tasks on both
    // machines, so both actually exercise splice recovery.
    let plan = FaultPlan::crash_at(2, VirtualTime(400));
    for w in [Workload::fib(16), Workload::mapreduce(0, 16, 8)] {
        both_agree_on_plan(&w, RecoveryMode::Splice, &plan);
    }
}

#[test]
fn parity_replicated_voting_same_plan() {
    // §5.3: processor 0 corrupts every replica result it emits, from t=0.
    // Triple redundancy with majority voting must mask it — identically —
    // on both substrates.
    let w = Workload::mapreduce(0, 16, 8);
    let expected = w.reference_result().unwrap();
    let mapred = w.program.lookup("mapred").unwrap();
    let plan = FaultPlan {
        events: vec![splice::simnet::fault::FaultEvent {
            at: VirtualTime(0),
            victim: 0,
            kind: FaultKind::Corrupt,
        }],
        root_events: Vec::new(),
    };
    let spec = ReplicaSpec {
        n: 3,
        vote: VoteMode::Majority,
    };

    let mut sim = sim_cfg(RecoveryMode::Splice);
    sim.recovery.replicate.insert(mapred, spec);
    let sim_report = run_workload(sim, &w, &plan);
    assert_eq!(sim_report.result, Some(expected.clone()), "sim voting");
    assert!(
        sim_report.stats.votes_decided >= 1,
        "sim replicas actually voted"
    );
    assert!(
        sim_report.stats.votes_dissenting >= 1,
        "a corrupted replica result was actually cast and outvoted \
         (otherwise this test is not exercising §5.3 masking)"
    );

    let mut rt = rt_cfg(RecoveryMode::Splice);
    rt.recovery.replicate.insert(mapred, spec);
    let rt_report = run_plan(rt, &w, &plan);
    assert_eq!(rt_report.result, Some(expected), "threads voting");
    assert!(
        rt_report.stats.votes_decided >= 1,
        "threaded replicas actually voted"
    );
    assert_eq!(sim_report.result, rt_report.result);
}

#[test]
fn parity_under_crashes() {
    for w in [Workload::fib(13), Workload::mapreduce(0, 16, 8)] {
        let expected = w.reference_result().unwrap();
        let ff = run_workload(sim_cfg(RecoveryMode::Splice), &w, &FaultPlan::none());
        let sim_faults = FaultPlan::crash_at(2, VirtualTime(ff.finish.ticks() / 3));
        let sim_report = run_workload(sim_cfg(RecoveryMode::Splice), &w, &sim_faults);
        assert_eq!(sim_report.result, Some(expected.clone()), "sim: {}", w.name);

        let crashes = vec![CrashAt {
            victim: 2,
            after: Duration::from_millis(15),
        }];
        let rt_report = run_threads(rt_cfg(RecoveryMode::Splice), &w, &crashes);
        assert_eq!(rt_report.result, Some(expected), "threads: {}", w.name);
    }
}

#[test]
fn rollback_parity_under_crash() {
    let w = Workload::fib(13);
    let plan = FaultPlan::crash_at(1, VirtualTime(400));
    both_agree_on_plan(&w, RecoveryMode::Rollback, &plan);
}

#[test]
fn bounce_only_discovery_parity_across_all_three_backends() {
    // Detector disabled everywhere: no simulator notice broadcasts
    // (`DetectorConfig::broadcast = false`), no reactor notices, no
    // heartbeat monitor on the threads (`detector_broadcast = false`).
    // Failures are discovered exclusively through bounced sends, salvage
    // arrivals and ack timeouts — and recovery must still complete with
    // the reference answer on every backend.
    let w = Workload::fib(14);
    let expected = w.reference_result().unwrap();

    let mut sim = sim_cfg(RecoveryMode::Splice);
    sim.detector.broadcast = false;
    let sim_ff = run_workload(sim.clone(), &w, &FaultPlan::none());
    assert!(sim_ff.completed);
    let plan = FaultPlan::crash_at(2, VirtualTime(sim_ff.finish.ticks() / 3));
    let sim_report = run_workload(sim, &w, &plan);
    assert!(sim_report.completed, "bounce-only sim stalled");
    assert_eq!(sim_report.result, Some(expected.clone()), "sim");
    assert!(sim_report.bounces > 0, "sim never bounced a send");

    let mut rea = sim_cfg(RecoveryMode::Splice);
    rea.detector.broadcast = false;
    let rea_ff = run_reactor(rea.clone(), &w, &FaultPlan::none());
    assert!(rea_ff.completed);
    let rea_plan = FaultPlan::crash_at(2, VirtualTime(rea_ff.finish.ticks() / 3));
    let rea_report = run_reactor(rea, &w, &rea_plan);
    assert!(rea_report.completed, "bounce-only reactor stalled");
    assert_eq!(rea_report.result, Some(expected.clone()), "reactor");
    assert!(rea_report.bounces > 0, "reactor never bounced a send");

    let mut rt = rt_cfg(RecoveryMode::Splice);
    rt.detector_broadcast = false;
    // Tick 400 = 10ms: early enough that the victim holds live tasks.
    let rt_report = run_plan(rt, &w, &FaultPlan::crash_at(2, VirtualTime(400)));
    assert_eq!(rt_report.result, Some(expected), "threads");
    assert_eq!(rt_report.detections, 0, "no monitor, no detections");
}

#[test]
fn parity_sharded_topology_same_plan() {
    // One shared fault plan — crash processor 2 (shard 1) early — driven
    // through a 2×2 *sharded* sim machine and through the threaded runtime
    // configured with the same sharded topology. Recovery must cross the
    // shard boundary on the simulator (the checkpoint holders live in
    // shard 0) and both substrates must still produce the reference
    // answer.
    let plan = FaultPlan::crash_at(2, VirtualTime(400));
    for w in [Workload::fib(13), Workload::mapreduce(0, 16, 8)] {
        let expected = w.reference_result().unwrap();

        let mut sim = MachineConfig::sharded(2, 2, 200);
        sim.policy = Policy::RoundRobin;
        sim.recovery.mode = RecoveryMode::Splice;
        let sim_report = run_workload(sim, &w, &plan);
        assert!(sim_report.completed, "sharded sim stalled: {}", w.name);
        assert!(!sim_report.stalled, "{}", w.name);
        assert_eq!(
            sim_report.result,
            Some(expected.clone()),
            "sharded sim: {}",
            w.name
        );
        assert!(
            sim_report.shard_msgs_inter > 0,
            "{}: nothing crossed the router",
            w.name
        );

        let mut rt = rt_cfg(RecoveryMode::Splice);
        rt.topology = Topology::Sharded {
            shards: 2,
            inner: Box::new(Topology::Complete { n: 2 }),
        };
        let rt_report = run_plan(rt, &w, &plan);
        assert_eq!(
            rt_report.result,
            Some(expected),
            "sharded threads: {}",
            w.name
        );
        assert_eq!(sim_report.result, rt_report.result);
    }
}
