//! Driver parity: the simulator and the threaded runtime run the *same*
//! engine and must produce the same answers — fault-free and under
//! crashes — for the same workloads.

use splice::prelude::*;
use splice::runtime::{run as run_threads, CrashAt, RuntimeConfig};
use std::time::Duration;

fn both_agree(w: &Workload, crash: bool) {
    let expected = w.reference_result().unwrap();

    let mut sim_cfg = MachineConfig::new(4);
    sim_cfg.recovery.mode = RecoveryMode::Splice;
    let sim_faults = if crash {
        let ff = run_workload(sim_cfg.clone(), w, &FaultPlan::none());
        FaultPlan::crash_at(2, VirtualTime(ff.finish.ticks() / 3))
    } else {
        FaultPlan::none()
    };
    let sim_report = run_workload(sim_cfg, w, &sim_faults);
    assert_eq!(sim_report.result, Some(expected.clone()), "sim: {}", w.name);

    let mut rt_cfg = RuntimeConfig::new(4);
    rt_cfg.recovery.mode = RecoveryMode::Splice;
    let crashes = if crash {
        vec![CrashAt {
            victim: 2,
            after: Duration::from_millis(15),
        }]
    } else {
        vec![]
    };
    let rt_report = run_threads(rt_cfg, w, &crashes);
    assert_eq!(
        rt_report.result,
        Some(expected),
        "threads: {}",
        w.name
    );
}

#[test]
fn parity_fault_free() {
    for w in [
        Workload::fib(12),
        Workload::dcsum(0, 64),
        Workload::quicksort(20, 11),
    ] {
        both_agree(&w, false);
    }
}

#[test]
fn parity_under_crashes() {
    for w in [Workload::fib(13), Workload::mapreduce(0, 16, 8)] {
        both_agree(&w, true);
    }
}

#[test]
fn rollback_parity_under_crash() {
    let w = Workload::fib(13);
    let expected = w.reference_result().unwrap();
    let mut rt_cfg = RuntimeConfig::new(4);
    rt_cfg.recovery.mode = RecoveryMode::Rollback;
    let r = run_threads(
        rt_cfg,
        &w,
        &[CrashAt {
            victim: 1,
            after: Duration::from_millis(10),
        }],
    );
    assert_eq!(r.result, Some(expected));
}
