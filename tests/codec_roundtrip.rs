//! Seeded-random fuzzing of the `splice-simnet` wire codec: every
//! generated message must round-trip bit-exactly through the frame
//! envelope, and *no* truncation or corruption of a valid frame may ever
//! panic the decoder — the multi-process backend feeds it bytes straight
//! off a socket that the fault injector deliberately mangles.

use splice::core::ids::{ProcId, TaskAddr, TaskKey};
use splice::core::packet::{
    AckInfo, CkptPacket, Msg, ReplicaInfo, ResultPacket, SalvagePacket, TaskLink, TaskPacket,
};
use splice::core::stamp::LevelStamp;
use splice::lang::wave::Demand;
use splice::lang::{FnId, Value};
use splice::simnet::codec::{decode_msg, encode_msg, encode_msg_frame, FrameBuf};

/// splitmix64 — one deterministic stream drives every generated shape.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Stamps across both representation axes: inline (short, small digits),
/// deep (level > 22 forces the heap form), and wide (digits > 255 force
/// multi-byte varints).
fn random_stamp(s: &mut u64) -> LevelStamp {
    let len = (mix(s) % 40) as usize;
    let digits: Vec<u32> = (0..len)
        .map(|_| match mix(s) % 4 {
            0 => mix(s) as u32,                  // full-width digit
            1 => 256 + (mix(s) % 70_000) as u32, // past the inline byte
            _ => (mix(s) % 256) as u32,          // inline-representable
        })
        .collect();
    LevelStamp::from_digits(&digits)
}

fn random_value(s: &mut u64, depth: u32) -> Value {
    match mix(s) % if depth == 0 { 4 } else { 6 } {
        0 => Value::Int(mix(s) as i64),
        1 => Value::Bool(mix(s).is_multiple_of(2)),
        2 => Value::Unit,
        3 => {
            let len = (mix(s) % 12) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| b'a' + (mix(s) % 26) as u8).collect();
            Value::Str(String::from_utf8(bytes).unwrap().into())
        }
        _ => {
            let len = (mix(s) % 4) as usize;
            Value::List(
                (0..len)
                    .map(|_| random_value(s, depth - 1))
                    .collect::<Vec<_>>()
                    .into(),
            )
        }
    }
}

fn random_addr(s: &mut u64) -> TaskAddr {
    if mix(s).is_multiple_of(8) {
        TaskAddr::super_root()
    } else {
        TaskAddr::new(ProcId((mix(s) % 64) as u32), TaskKey(mix(s) % 1_000))
    }
}

fn random_link(s: &mut u64) -> TaskLink {
    if mix(s).is_multiple_of(8) {
        TaskLink::super_root()
    } else {
        TaskLink::new(random_addr(s), random_stamp(s))
    }
}

fn random_demand(s: &mut u64) -> Demand {
    let n = (mix(s) % 4) as usize;
    Demand::new(
        FnId((mix(s) % 32) as u32),
        (0..n).map(|_| random_value(s, 3)).collect(),
    )
}

fn random_replica(s: &mut u64) -> Option<ReplicaInfo> {
    mix(s).is_multiple_of(4).then(|| ReplicaInfo {
        index: (mix(s) % 5) as u32,
        total: 1 + (mix(s) % 5) as u32,
    })
}

fn random_msg(s: &mut u64) -> Msg {
    match mix(s) % 9 {
        0 => Msg::spawn(TaskPacket {
            stamp: random_stamp(s),
            demand: random_demand(s),
            parent: random_link(s),
            ancestors: (0..(mix(s) % 4) as usize).map(|_| random_link(s)).collect(),
            incarnation: (mix(s) % 7) as u32,
            hops: (mix(s) % 40) as u32,
            replica: random_replica(s),
            under_replica: mix(s).is_multiple_of(2),
        }),
        1 => Msg::Ack(Box::new(AckInfo {
            child_stamp: random_stamp(s),
            child_addr: random_addr(s),
            parent: random_addr(s),
            incarnation: (mix(s) % 7) as u32,
        })),
        2 => Msg::result(ResultPacket {
            from_stamp: random_stamp(s),
            demand: random_demand(s),
            value: random_value(s, 4),
            to: random_addr(s),
            to_stamp: random_stamp(s),
            relay_chain: (0..(mix(s) % 3) as usize).map(|_| random_link(s)).collect(),
            replica: random_replica(s),
        }),
        3 => Msg::salvage(SalvagePacket {
            to: random_addr(s),
            dead_stamp: random_stamp(s),
            dead_addr: random_addr(s),
            demand: random_demand(s),
            value: random_value(s, 4),
            from_stamp: random_stamp(s),
        }),
        4 => Msg::Abort { to: random_addr(s) },
        5 => Msg::Load {
            from: ProcId((mix(s) % 64) as u32),
            pressure: mix(s) as u32,
        },
        6 => Msg::FailureNotice {
            dead: if mix(s).is_multiple_of(8) {
                ProcId::SUPER_ROOT
            } else {
                ProcId((mix(s) % 64) as u32)
            },
        },
        7 => Msg::ckpt(CkptPacket {
            owner: random_addr(s),
            from_stamp: random_stamp(s),
            entries: (0..(mix(s) % 4) as usize)
                .map(|_| (random_demand(s), random_value(s, 3)))
                .collect(),
        }),
        _ => Msg::Probe,
    }
}

/// 512 seeded-arbitrary messages — stamps past the 24-byte inline form on
/// both axes, nested list values, replica metadata, super-root sentinels —
/// each must survive encode → frame → reassemble → decode bit-exactly.
#[test]
fn arbitrary_messages_round_trip_through_frames() {
    let mut s = 0x5eed_0001u64;
    let mut scratch = Vec::new();
    for i in 0..512 {
        let msg = random_msg(&mut s);
        let mut wire = Vec::new();
        encode_msg_frame(&msg, &mut scratch, &mut wire);
        let mut fb = FrameBuf::new();
        fb.extend(&wire);
        let body = fb
            .next_frame()
            .unwrap_or_else(|e| panic!("case {i}: frame error {e} on {msg:?}"))
            .unwrap_or_else(|| panic!("case {i}: no frame"));
        let back = decode_msg(&body).unwrap_or_else(|e| panic!("case {i}: {e} on {msg:?}"));
        assert_eq!(back, msg, "case {i}");
        assert_eq!(fb.pending(), 0, "case {i}: trailing bytes");
    }
}

/// Every prefix of a valid message body is an error, never a panic.
#[test]
fn truncated_bodies_error_never_panic() {
    let mut s = 0x5eed_0002u64;
    for _ in 0..64 {
        let msg = random_msg(&mut s);
        let mut body = Vec::new();
        encode_msg(&msg, &mut body);
        for cut in 0..body.len() {
            assert!(
                decode_msg(&body[..cut]).is_err(),
                "prefix {cut}/{} of {msg:?} decoded",
                body.len()
            );
        }
    }
}

/// Single-byte corruption anywhere past the length word — version byte,
/// body, checksum trailer — must be rejected by the frame layer or the
/// decoder: the CRC covers all of it. (Corrupting the length word itself
/// changes how the stream is framed; that region only has to not panic
/// and not reproduce the original message, which the reassembly test in
/// `splice-simnet` pins.)
#[test]
fn corrupted_frames_are_always_rejected() {
    let mut s = 0x5eed_0003u64;
    let mut scratch = Vec::new();
    for _ in 0..64 {
        let msg = random_msg(&mut s);
        let mut wire = Vec::new();
        encode_msg_frame(&msg, &mut scratch, &mut wire);
        for i in 4..wire.len() {
            let flip = 1u8 << (mix(&mut s) % 8);
            let mut bad = wire.clone();
            bad[i] ^= flip;
            let mut fb = FrameBuf::new();
            fb.extend(&bad);
            match fb.next_frame() {
                Err(_) => {}
                Ok(None) => panic!("byte {i}: frame silently swallowed"),
                Ok(Some(body)) => panic!(
                    "byte {i} flipped by {flip:#04x} passed the checksum ({} body bytes)",
                    body.len()
                ),
            }
        }
    }
}

/// Corrupting the length word never panics the reassembler: it either
/// errors (oversize/checksum), waits for more input, or mis-frames into a
/// checksum failure — but it must never yield the original message from a
/// damaged prefix.
#[test]
fn corrupted_length_words_never_panic() {
    let mut s = 0x5eed_0004u64;
    let mut scratch = Vec::new();
    for _ in 0..64 {
        let msg = random_msg(&mut s);
        let mut wire = Vec::new();
        encode_msg_frame(&msg, &mut scratch, &mut wire);
        for i in 0..4 {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[i] ^= 1u8 << bit;
                let mut fb = FrameBuf::new();
                fb.extend(&bad);
                if let Ok(Some(body)) = fb.next_frame() {
                    // A shorter length can frame a prefix; the CRC then
                    // sits over different bytes and must not validate a
                    // body that decodes back to the original message.
                    if let Ok(back) = decode_msg(&body) {
                        assert_ne!(back, msg, "shrunken frame reproduced the message");
                    }
                }
            }
        }
    }
}
