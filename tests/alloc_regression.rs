//! Allocation regression guard for the engine hot loop.
//!
//! PR 4 made the `Engine` → dispatch → substrate pipeline allocation-free
//! on the steady-state path: handlers fill a caller-owned [`ActionSink`]
//! instead of returning fresh `Vec<Action>`s, task frames are recycled
//! from a per-engine pool, and wave evaluation runs on pooled scratch.
//! What remains is genuinely new data (spawn packets, checkpoint copies,
//! values). This test pins that property with a counting global allocator:
//! a full fault-free fib(12) simulation must stay under a fixed allocation
//! budget. Measured on this container: the pre-PR4 pipeline performed
//! ~15,000 allocations on this run, the sink/arena pipeline ~8,100. The
//! ceiling sits between the two with headroom over the measured count, so
//! the guard trips on systematic regressions (a reintroduced per-handler
//! `Vec`, a lost pool), not on noise — and the old pipeline would fail it.

// A counting GlobalAlloc cannot be written without `unsafe`; the workspace
// denies it by default, so this test opts out locally.
#![allow(unsafe_code)]

use splice::lang::Workload;
use splice::sim::machine::{run_workload, MachineConfig};
use splice::simnet::fault::FaultPlan;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

struct Counting;

// SAFETY: every method delegates to `System` with the caller's layout
// unchanged; the only extra behaviour is a relaxed counter increment.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr` was allocated by `System` with `layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

/// The steady-state pump of a fault-free fib(12) run (4 processors,
/// deterministic DES) must allocate below a pinned ceiling.
///
/// This file must hold exactly one `#[test]` (libtest runs tests on
/// concurrent threads, and the counting allocator is process-global —
/// a sibling test's allocations would land in the measured window), so
/// the `size_of::<Action>` companion pin lives at the end of this test.
#[test]
fn steady_state_pump_stays_under_allocation_ceiling() {
    const CEILING: u64 = 12_000;

    let w = Workload::fib(12);
    let mut cfg = MachineConfig::new(4);
    cfg.recovery.load_beacon_period = 200;
    // Machine construction (engines, queues, placers) is outside the
    // steady-state claim; count only the run itself.
    let machine = splice::sim::machine::Machine::new(cfg, &w);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let report = machine.run(&FaultPlan::none());
    COUNTING.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    assert!(report.completed, "run must complete");
    assert_eq!(report.result, Some(w.reference_result().unwrap()));
    assert!(
        allocs < CEILING,
        "steady-state pump allocated {allocs} times (ceiling {CEILING}); \
         a hot-path allocation crept back in"
    );
    // Checksum-only tracing must ride the hot loop for free: the
    // `ChecksumSink` folds every canonical event into two u64 digests
    // with no retained storage, and the digest helpers hash by field.
    // The same run with tracing on must therefore add ZERO heap
    // allocations over the untraced run just measured.
    let mut cfg = MachineConfig::new(4);
    cfg.recovery.load_beacon_period = 200;
    cfg.trace = splice::simnet::trace::TraceMode::Checksum;
    let machine = splice::sim::machine::Machine::new(cfg, &w);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let traced_report = machine.run(&FaultPlan::none());
    COUNTING.store(false, Ordering::Relaxed);
    let traced_allocs = ALLOCS.load(Ordering::Relaxed);
    assert!(traced_report.completed, "traced run must complete");
    assert!(traced_report.trace.events > 0, "checksum mode must trace");
    assert!(
        traced_allocs <= allocs,
        "checksum tracing allocated: {traced_allocs} with tracing vs \
         {allocs} without — the trace path must not touch the heap"
    );

    // A second run on a fresh machine must not allocate more than the
    // first (the DES is deterministic, so drift here means a leak of
    // determinism, not load).
    let mut cfg = MachineConfig::new(4);
    cfg.recovery.load_beacon_period = 200;
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let again = run_workload(cfg, &w, &FaultPlan::none());
    COUNTING.store(false, Ordering::Relaxed);
    let allocs_again = ALLOCS.load(Ordering::Relaxed);
    assert!(again.completed);
    // The second measurement includes machine construction; allow it a
    // small constant on top of the run ceiling.
    assert!(
        allocs_again < CEILING + 4_000,
        "second run allocated {allocs_again} times"
    );

    // `Action` must stay small enough to move by value through sinks,
    // queues and channels (the companion pin to the `Msg` size test).
    assert!(
        std::mem::size_of::<splice::core::engine::Action>() <= 32,
        "Action grew past 32 bytes: {}",
        std::mem::size_of::<splice::core::engine::Action>()
    );

    // The reactor pump must inherit the allocation-free hot loop: one
    // reusable `ActionSink` per `DriverLoop`, recycled task frames and
    // evaluator pools, mailbox/ready/wheel storage that reaches steady
    // state. Same workload, same claim, own ceiling (the reactor has no
    // DES event queue and delivers without latency, so it allocates less
    // than the simulator run above).
    const REACTOR_CEILING: u64 = 9_000;
    let mut cfg = MachineConfig::new(4);
    cfg.recovery.load_beacon_period = 200;
    let machine = splice::sim::reactor::ReactorMachine::new(cfg, &w);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let report = machine.run(&FaultPlan::none());
    COUNTING.store(false, Ordering::Relaxed);
    let reactor_allocs = ALLOCS.load(Ordering::Relaxed);
    assert!(report.completed, "reactor run must complete");
    assert_eq!(report.result, Some(w.reference_result().unwrap()));
    assert!(
        reactor_allocs < REACTOR_CEILING,
        "reactor steady-state pump allocated {reactor_allocs} times \
         (ceiling {REACTOR_CEILING}); a hot-path allocation crept in"
    );

    // The parallel reactor adds per-round coordination on top of the pump
    // loop: barrier commands, one envelope per peer link per round, and
    // coordinator-side fan-in. The envelope buffers circulate through a
    // pool (a drained peer envelope becomes the next outbound buffer) and
    // the round-trip structures ping-pong between coordinator and pumps,
    // so what remains per round is the channel traffic itself — a handful
    // of queue nodes — never per-message or per-engine allocation. Own
    // ceiling, measured with the same workload at two pumps (~7,800 on
    // this container; headroom over that, and well under the ~15,000 a
    // per-send envelope allocation would cost).
    const PARALLEL_CEILING: u64 = 10_000;
    let mut cfg = MachineConfig::new(4);
    cfg.recovery.load_beacon_period = 200;
    cfg.threads = 2;
    let machine = splice::sim::parallel::ParallelReactorMachine::new(cfg, &w);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let report = machine.run(&FaultPlan::none());
    COUNTING.store(false, Ordering::Relaxed);
    let parallel_allocs = ALLOCS.load(Ordering::Relaxed);
    assert!(report.completed, "parallel reactor run must complete");
    assert_eq!(report.result, Some(w.reference_result().unwrap()));
    assert_eq!(report.threads, 2);
    assert!(
        parallel_allocs < PARALLEL_CEILING,
        "parallel-reactor steady-state pump allocated {parallel_allocs} \
         times (ceiling {PARALLEL_CEILING}); a per-send or per-engine \
         allocation crept into the round loop"
    );
}
