//! End-to-end tests of the multi-process shard substrate: real worker
//! processes, real Unix sockets, real faults. Where the DES *models* a
//! crash, these tests `SIGKILL` a live OS process mid-run and watch the
//! recovery protocol put the computation back together; where the DES
//! models lossy links, these tests corrupt and partition actual socket
//! traffic and watch the transport's checksum/reconnect/replay machinery
//! absorb it.
//!
//! Every test pins the worker binary via `CARGO_BIN_EXE_splice-proc-worker`
//! (cargo builds it before running integration tests), so the tests are
//! insensitive to the working directory and to `$PATH`.

#![cfg(unix)]

use splice::core::config::RecoveryMode;
use splice::gradient::Policy;
use splice::prelude::*;
use splice::sim::proc::{parse_workload, run_process, ProcConfig};
use splice::sim::{execute, Backend};
use splice::simnet::fault::ProcessFaultPlan;
use splice::simnet::trace::TraceMode;
use std::path::PathBuf;

fn proc_cfg(shards: u32, per_shard: u32) -> ProcConfig {
    let mut c = ProcConfig::new(shards, per_shard);
    c.worker_bin = Some(PathBuf::from(env!("CARGO_BIN_EXE_splice-proc-worker")));
    c.recovery.mode = RecoveryMode::Splice;
    // The DES default ack timeout (4k units = 100ms wall here) is within
    // scheduler-noise range when the host is oversubscribed — a worker
    // descheduled that long reissues spuriously, and the resulting storm
    // can thrash a run into its 30s deadline. 300ms keeps timeouts
    // meaningful (probing still drives silent-death discovery) while
    // tolerating CI-grade contention.
    c.recovery.ack_timeout = 12_000;
    c
}

/// Fault-free parity with the DES: same verdict, same value, and the
/// *same commutative semantic checksum* — the multiset of completed
/// (stamp, value) pairs is identical even though one machine is a
/// deterministic event queue and the other is four OS processes racing
/// over sockets.
#[test]
fn process_matches_des_fault_free_semantics() {
    let w = Workload::fib(12);

    let mut des_cfg = MachineConfig::sharded(2, 2, 0);
    // Round-robin placement: with load beacons off, gradient placement
    // would keep the whole tree on the root's shard and the wire would
    // stay silent — round-robin guarantees real cross-shard traffic.
    des_cfg.policy = Policy::RoundRobin;
    des_cfg.recovery.mode = RecoveryMode::Splice;
    des_cfg.recovery.load_beacon_period = 0;
    des_cfg.trace = TraceMode::Checksum;
    let (des, _) = execute(Backend::Des, des_cfg, &w, &FaultPlan::none());
    assert!(des.completed, "DES baseline stalled");

    let mut cfg = proc_cfg(2, 2);
    cfg.policy = Policy::RoundRobin;
    cfg.recovery.load_beacon_period = 0;
    // Generous ack timeout: wall-clock scheduling noise must not trigger
    // spurious reissues, which would add duplicate Complete events to the
    // semantic checksum.
    cfg.recovery.ack_timeout = 40_000;
    cfg.trace = TraceMode::Checksum;
    let report = run_process(&cfg, &w, &ProcessFaultPlan::none()).expect("launch");

    assert!(report.completed, "process run stalled: {report}");
    assert_eq!(report.result, des.result);
    assert_eq!(report.result, Some(w.reference_result().unwrap()));
    assert!(report.trace.events > 0, "process run traced nothing");
    assert_eq!(
        report.trace.semantic, des.trace.semantic,
        "semantic checksum diverged: process {:#018x} vs des {:#018x}",
        report.trace.semantic, des.trace.semantic
    );
    assert!(report.frames_sent > 0, "no cross-shard frames at all?");
}

/// The headline robustness claim: `kill -9` a shard's worker process in
/// the middle of fib(16) on a 4-shard machine — with the coordinator's
/// failure broadcast *disabled*, so the survivors must discover the death
/// themselves through exhausted reconnect budgets — and the run still
/// produces the right answer, with the transport's reconnect machinery
/// demonstrably exercised.
///
/// The kill instant is wall-clock relative, so a faster host could finish
/// before the fault lands; the test retries with earlier instants until
/// the kill demonstrably interrupted the run (`reconnects > 0`).
#[test]
fn kill_shard_mid_run_recovers() {
    let w = Workload::fib(16);
    for at in [3_000u64, 1_000, 300] {
        let mut cfg = proc_cfg(4, 1);
        cfg.detector_broadcast = false;
        let plan = ProcessFaultPlan::none().kill_shard(1, VirtualTime(at));
        let report = run_process(&cfg, &w, &plan).expect("launch");
        assert!(
            report.completed,
            "killed run did not complete (kill at t={at}): {report}"
        );
        assert_eq!(
            report.result,
            Some(w.reference_result().unwrap()),
            "killed run produced a wrong answer (kill at t={at})"
        );
        if report.reconnects > 0 {
            // Dead-peer discovery ran: connection attempts against the
            // killed worker were made and eventually declared it dead,
            // bouncing the pending sends into recovery.
            return;
        }
        // reconnects == 0 means the run finished before the kill landed;
        // retry with an earlier instant.
    }
    panic!("kill never landed mid-run, even at t=300");
}

/// A corrupted frame must be *detected* (checksum), *counted*
/// (`decode_errors`), *survived* (connection drop → reconnect → retained
/// replay), and must never corrupt the answer.
/// The garble arms at a wall-clock instant and corrupts the *next* 0→1
/// frame; a fast host can finish the run (or at least its cross-shard
/// phase) before that frame exists, so the test retries with earlier
/// instants until a corruption demonstrably happened.
#[test]
fn garbled_frame_is_detected_and_replayed() {
    let w = Workload::fib(14);
    for at in [500u64, 150, 40] {
        let mut cfg = proc_cfg(2, 2);
        // Round-robin placement keeps cross-shard traffic flowing for the
        // whole run, so the garble flag is guaranteed to find a frame.
        cfg.policy = Policy::RoundRobin;
        let plan = ProcessFaultPlan::none().garble_next(0, 1, VirtualTime(at));
        let report = run_process(&cfg, &w, &plan).expect("launch");
        assert!(report.completed, "garbled run stalled (t={at}): {report}");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        if report.decode_errors >= 1 {
            assert!(
                report.reconnects >= 1,
                "rejected frame did not force a reconnect: {report}"
            );
            assert!(
                report.frames_resent >= 1,
                "reconnect did not replay retained frames: {report}"
            );
            return;
        }
        // No decode error means no 0→1 frame followed the arm instant;
        // retry earlier in the run.
    }
    panic!("garble never found a frame to corrupt, even at t=40");
}

/// A one-directional partition gates outbound frames for its window; the
/// retained-replay transport delivers everything once it heals, so the
/// run completes with the right answer and nothing is lost.
#[test]
fn partition_heals_without_loss() {
    let w = Workload::fib(14);
    let mut cfg = proc_cfg(2, 2);
    cfg.policy = Policy::RoundRobin;
    let plan = ProcessFaultPlan::none().partition_out(0, 1, VirtualTime(500), 2_000);
    let report = run_process(&cfg, &w, &plan).expect("launch");
    assert!(report.completed, "partitioned run stalled: {report}");
    assert_eq!(report.result, Some(w.reference_result().unwrap()));
    assert!(report.frames_sent > 0);
}

/// Whole-system death: every shard's worker is killed mid-run. The
/// coordinator must detect the quiescent machine and report a stall —
/// not hang until its timeout, and not invent a result.
/// The kill instants are wall-clock relative and a fast host can finish
/// fib(16) before they land, so the test retries with earlier instants
/// until the massacre demonstrably interrupted the run.
#[test]
fn killing_every_shard_stalls() {
    let w = Workload::fib(16);
    for at in [2_000u64, 500, 100] {
        let cfg = proc_cfg(2, 1);
        let plan = ProcessFaultPlan::none()
            .kill_shard(0, VirtualTime(at))
            .kill_shard(1, VirtualTime(at + 100));
        let report = run_process(&cfg, &w, &plan).expect("launch");
        if report.completed {
            // The run beat the kills to the finish line; retry earlier.
            continue;
        }
        assert!(report.stalled, "all-dead run was not detected as a stall");
        assert_eq!(report.result, None);
        return;
    }
    panic!("every kill landed after completion, even at t=100");
}

/// The replicated super-root on real processes: `kill -9` the shard
/// hosting the acting primary (rank 0 lives on shard `0 % shards`) in
/// the middle of fib(16). The coordinator deposes the dead host's
/// replicas, the next-ranked live replica takes over from the replicated
/// checkpoint and reissues the root wave, and the run completes with the
/// right answer and `root_failovers >= 1`.
///
/// The kill instant is wall-clock relative; a fast host can finish
/// before it lands (`root_failovers == 0`), so the test retries earlier.
#[test]
fn sigkill_of_acting_primary_host_fails_over() {
    let w = Workload::fib(16);
    for at in [3_000u64, 1_000, 300] {
        let mut cfg = proc_cfg(4, 1);
        cfg.policy = Policy::RoundRobin;
        let plan = ProcessFaultPlan::none().kill_shard(0, VirtualTime(at));
        let report = run_process(&cfg, &w, &plan).expect("launch");
        assert!(
            report.completed,
            "primary-host kill at t={at} stalled the run: {report}"
        );
        assert_eq!(
            report.result,
            Some(w.reference_result().unwrap()),
            "primary-host kill at t={at} corrupted the answer"
        );
        assert_eq!(report.root_replicas, 3);
        if report.root_failovers >= 1 {
            return;
        }
        // The run beat the kill; retry earlier.
    }
    panic!("the kill never deposed the acting primary, even at t=300");
}

/// Asymmetric *inbound* partition of the acting primary's host: the
/// victim goes inbound-dark (listener down, peer links severed) while
/// its own outbound links and the control plane stay up — a zombie that
/// still computes and sends but hears nothing. With the coordinator's
/// failure broadcast disabled, the peers must exhaust their reconnect
/// budgets against the missing socket, gossip the death up the driver
/// link, and the coordinator must depose the excommunicated host's root
/// replicas: the run fails over and completes with the right answer.
#[test]
fn inbound_partition_of_primary_host_fails_over() {
    let w = Workload::fib(16);
    for at in [2_000u64, 600, 150] {
        let mut cfg = proc_cfg(2, 1);
        cfg.policy = Policy::RoundRobin;
        cfg.detector_broadcast = false;
        // The window (in 25µs units) comfortably outlasts the peers'
        // full reconnect-backoff ladder, so the blackout is terminal
        // from their point of view.
        let plan = ProcessFaultPlan::none().partition_in(0, VirtualTime(at), 40_000);
        let report = run_process(&cfg, &w, &plan).expect("launch");
        assert!(
            report.completed,
            "inbound partition at t={at} stalled the run: {report}"
        );
        assert_eq!(
            report.result,
            Some(w.reference_result().unwrap()),
            "inbound partition at t={at} corrupted the answer"
        );
        if report.root_failovers >= 1 {
            assert!(
                report.reconnects >= 1,
                "failover without any reconnect attempts: {report}"
            );
            return;
        }
        // The run beat the blackout; retry earlier.
    }
    panic!("the blackout never excommunicated the primary host, even at t=150");
}

/// Byte-level socket noise: roughly every other data frame from shard 0
/// toward shard 1 has one random body byte flipped for the window. Every
/// corruption must be detected (checksum → `decode_errors`), survived
/// (connection drop → reconnect → clean retained replay), and must never
/// corrupt the answer.
#[test]
fn socket_noise_is_detected_and_survived() {
    let w = Workload::fib(14);
    for at in [500u64, 150, 40] {
        let mut cfg = proc_cfg(2, 2);
        cfg.policy = Policy::RoundRobin;
        let plan = ProcessFaultPlan::none().noise_out(0, 1, VirtualTime(at), 4_000);
        let report = run_process(&cfg, &w, &plan).expect("launch");
        assert!(report.completed, "noisy run stalled (t={at}): {report}");
        assert_eq!(report.result, Some(w.reference_result().unwrap()));
        if report.decode_errors >= 1 {
            assert!(
                report.frames_resent >= 1,
                "rejected frames were never replayed: {report}"
            );
            return;
        }
        // The window saw no cross-shard frames; retry earlier.
    }
    panic!("noise never hit a frame, even at t=40");
}

/// `Backend::Process` in the replay layer maps a DES-shaped
/// `(MachineConfig, FaultPlan)` onto the process machine: whole-shard
/// crash plans translate, and the verdict and value match the DES.
#[test]
fn replay_backend_process_translates_shard_crashes() {
    let w = Workload::fib(12);
    let mut cfg = MachineConfig::sharded(2, 2, 0);
    cfg.recovery.mode = RecoveryMode::Splice;
    let plan = FaultPlan::crash_shard(1, 2, VirtualTime(800));
    let (des, _) = execute(Backend::Des, cfg.clone(), &w, &plan);
    let (proc_rep, events) = execute(Backend::Process, cfg, &w, &plan);
    assert!(events.is_empty(), "process backend has no stream to replay");
    assert!(des.completed && proc_rep.completed);
    assert_eq!(proc_rep.result, des.result);
    // The per-processor crash pair collapses into one whole-shard kill.
    assert_eq!(proc_rep.faults, 1);
}

/// The worker rejects specs it cannot rebuild — the coordinator surfaces
/// that as an error instead of wedging the machine.
#[test]
fn unparseable_workload_is_rejected_up_front() {
    let nameless = Workload {
        name: "mystery(3)".into(),
        ..Workload::fib(3)
    };
    let cfg = proc_cfg(1, 2);
    let err = run_process(&cfg, &nameless, &ProcessFaultPlan::none())
        .expect_err("unparseable spec must not launch");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(parse_workload(&nameless.name).is_none());
}
