//! §4.1, Figure 5: the eight orderings of child completion vs. twin
//! creation, each forced deterministically at the engine level.
//!
//! Cast: task `g` (grandparent) on processor 0 spawns `p` (parent) on
//! processor 1, which spawns `c` (child) on processor 2. Processor 1 dies;
//! the twin `p'` is regenerated on processor 3. The harness delivers
//! messages and runs waves in exactly the order each case prescribes.
//!
//! | case | ordering                                   | expected mechanism |
//! |------|--------------------------------------------|--------------------|
//! | 1    | c never invoked                            | p' spawns c'       |
//! | 2    | c will never complete (its host dies too)  | p' spawns c'       |
//! | 3    | c completes before p dies                  | p' recalculates c' |
//! | 4    | c completes after p dies, before p' exists | salvage buffered, preloaded: no c' |
//! | 5    | c completes after p' exists, before c'     | salvage preloaded: no c' |
//! | 6    | c completes after c' invoked               | salvage supplies; c' duplicate ignored |
//! | 7    | c completes after c' completed             | duplicate ignored  |
//! | 8    | c completes after p' completed             | packet discarded   |

use splice::core::engine::{Action, Engine};
use splice::core::ids::ProcId;
use splice::core::packet::{Msg, TaskLink, TaskPacket};
use splice::core::place::ScriptedPlacer;
use splice::core::sink::ActionSink;
use splice::core::{Config, LevelStamp, RecoveryMode};
use splice::lang::parser::parse;
use splice::lang::wave::Demand;
use splice::lang::{Program, Value};
use std::collections::VecDeque;
use std::sync::Arc;

const SOURCE: &str = r#"
(def c (x) (* x 2))
(def p (x) (+ 1 (c x)))
(def g () (+ 1 (p 3)))
"#;

/// g = 1 + (1 + 3*2) = 8
const ANSWER: i64 = 8;

fn program() -> (Arc<Program>, Demand) {
    let parsed = parse(SOURCE).unwrap();
    let g = parsed.program.lookup("g").unwrap();
    (Arc::new(parsed.program), Demand::new(g, vec![]))
}

fn g_stamp() -> LevelStamp {
    LevelStamp::root().child(1)
}
fn p_stamp() -> LevelStamp {
    g_stamp().child(1)
}
fn c_stamp() -> LevelStamp {
    p_stamp().child(1)
}

/// A hand-driven cluster of four engines with a message pool the test
/// dispatches selectively.
struct Cluster {
    engines: Vec<Engine>,
    /// (from, to, msg) messages waiting for the test to deliver.
    pool: VecDeque<(ProcId, ProcId, Msg)>,
    dead: Vec<bool>,
    root_result: Option<Value>,
}

impl Cluster {
    fn new() -> Cluster {
        let (program, _) = program();
        let mut engines = Vec::new();
        for i in 0..4u32 {
            let mut cfg = Config::with_mode(RecoveryMode::Splice);
            cfg.load_beacon_period = 0;
            let mut placer = ScriptedPlacer::new(vec![ProcId(1), ProcId(3)]);
            placer.assign(p_stamp(), ProcId(1));
            placer.assign(c_stamp(), ProcId(2));
            engines.push(Engine::new(
                ProcId(i),
                program.clone(),
                cfg,
                Box::new(placer),
            ));
        }
        Cluster {
            engines,
            pool: VecDeque::new(),
            dead: vec![false; 4],
            root_result: None,
        }
    }

    fn absorb(&mut self, from: ProcId, sink: &mut ActionSink) {
        for a in sink.drain() {
            match a {
                Action::Send { to, msg } => self.pool.push_back((from, to, msg)),
                Action::SetTimer { .. } => {
                    // Timers are irrelevant here: the harness triggers
                    // recovery through explicit failure notices and bounces.
                }
            }
        }
    }

    /// Injects the root task g on processor 0.
    fn launch(&mut self) {
        let (_, demand) = program();
        let packet = TaskPacket {
            stamp: g_stamp(),
            demand,
            parent: TaskLink::super_root(),
            ancestors: vec![TaskLink::super_root()],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        };
        let mut sink = ActionSink::new();
        self.engines[0].on_message(Msg::spawn(packet), &mut sink);
        self.absorb(ProcId(0), &mut sink);
        // Discard the ack to the super-root.
        self.pool.retain(|(_, to, _)| !to.is_super_root());
    }

    /// Delivers every pooled message matching `pred` (in order), honouring
    /// dead destinations with bounce-backs to the sender.
    fn deliver_where(&mut self, mut pred: impl FnMut(&ProcId, &Msg) -> bool) -> usize {
        let mut delivered = 0;
        let mut remaining = VecDeque::new();
        while let Some((from, to, msg)) = self.pool.pop_front() {
            if !pred(&to, &msg) {
                remaining.push_back((from, to, msg));
                continue;
            }
            delivered += 1;
            if to.is_super_root() {
                if let Msg::Result(rp) = msg {
                    self.root_result = Some(rp.value);
                }
                continue;
            }
            if self.dead[to.0 as usize] {
                // Best-effort transport: sender learns the node is gone.
                if self.dead[from.0 as usize] {
                    continue; // both gone; message vanishes
                }
                let mut sink = ActionSink::new();
                self.engines[from.0 as usize].on_send_failed(to, msg, &mut sink);
                self.absorb(from, &mut sink);
                continue;
            }
            if self.dead[from.0 as usize] {
                continue; // fail-silent sender: message never left
            }
            let mut sink = ActionSink::new();
            self.engines[to.0 as usize].on_message(msg, &mut sink);
            self.absorb(to, &mut sink);
        }
        self.pool = remaining;
        delivered
    }

    /// Delivers everything currently pooled (and whatever that generates)
    /// until quiescent.
    fn settle(&mut self) {
        for _ in 0..64 {
            let moved = self.deliver_where(|_, _| true);
            let ran = self.run_all_ready();
            if moved == 0 && ran == 0 {
                return;
            }
        }
        panic!("cluster did not settle");
    }

    fn run_ready(&mut self, proc: u32) -> usize {
        let mut ran = 0;
        while let Some(key) = self.engines[proc as usize].pop_ready() {
            if self.dead[proc as usize] {
                break;
            }
            let mut sink = ActionSink::new();
            self.engines[proc as usize].run_wave(key, &mut sink);
            self.absorb(ProcId(proc), &mut sink);
            ran += 1;
        }
        ran
    }

    fn run_all_ready(&mut self) -> usize {
        let mut ran = 0;
        for p in 0..4 {
            if !self.dead[p as usize] {
                ran += self.run_ready(p);
            }
        }
        ran
    }

    fn kill(&mut self, proc: u32) {
        self.dead[proc as usize] = true;
    }

    /// Notifies `to` that `dead` failed.
    fn notice(&mut self, to: u32, dead: u32) {
        let mut sink = ActionSink::new();
        self.engines[to as usize].on_message(Msg::FailureNotice { dead: ProcId(dead) }, &mut sink);
        self.absorb(ProcId(to), &mut sink);
    }

    fn stats(&self, proc: u32) -> &splice::core::ProcStats {
        self.engines[proc as usize].stats()
    }

    /// Runs g's first wave so p is spawned and acked on processor 1.
    fn spawn_p(&mut self) {
        self.launch();
        self.run_ready(0); // g's wave: demands p
        self.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Spawn(_)));
        self.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    }

    /// Additionally runs p's first wave so c is spawned and acked.
    fn spawn_c(&mut self) {
        self.spawn_p();
        self.run_ready(1); // p's wave: demands c
        self.deliver_where(|to, m| *to == ProcId(2) && matches!(m, Msg::Spawn(_)));
        self.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Ack { .. }));
    }

    fn assert_answer(&self) {
        assert_eq!(
            self.root_result,
            Some(Value::Int(ANSWER)),
            "root answer must be exactly one correct value"
        );
    }
}

#[test]
fn case1_c_never_invoked() {
    let mut cl = Cluster::new();
    cl.spawn_p();
    // p dies before running a single wave: c was never invoked.
    cl.kill(1);
    cl.notice(0, 1);
    cl.settle();
    cl.assert_answer();
    // Only the twin's c' ever ran on processor 2.
    assert_eq!(cl.stats(2).tasks_created, 1);
    assert_eq!(cl.stats(0).step_parents_created, 1);
    assert_eq!(cl.stats(3).salvaged_results, 0);
}

#[test]
fn case2_c_never_completes() {
    let mut cl = Cluster::new();
    cl.spawn_c();
    // Both p and c die; no result of c is ever produced.
    cl.kill(1);
    cl.kill(2);
    cl.notice(0, 1);
    cl.notice(0, 2);
    cl.notice(3, 1);
    cl.notice(3, 2);
    cl.settle();
    cl.assert_answer();
    // c' was re-placed on a live processor by the fallback chain.
    assert_eq!(cl.stats(3).salvaged_results, 0);
}

#[test]
fn case3_c_completes_before_p_dies() {
    let mut cl = Cluster::new();
    cl.spawn_c();
    cl.run_ready(2); // c completes
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Result(_)));
    // The result of c is stored inside p; p dies and the result dies with
    // it ("the system loses all partial results which have been saved in P").
    cl.kill(1);
    cl.notice(0, 1);
    cl.notice(2, 1);
    cl.settle();
    cl.assert_answer();
    // c was recalculated: two c-instances ran on processor 2.
    assert_eq!(cl.stats(2).tasks_created, 2);
    assert_eq!(cl.stats(3).salvaged_results, 0, "nothing to salvage");
}

#[test]
fn case4_result_arrives_before_twin_exists() {
    let mut cl = Cluster::new();
    cl.spawn_c();
    cl.kill(1); // p dies while c is still computing
    cl.run_ready(2); // c completes, tries to return to dead p
                     // The bounce routes the orphan result to grandparent g — *before* any
                     // failure notice reached processor 0, so g must reproduce p' first.
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Result(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Salvage(_)));
    assert_eq!(
        cl.stats(0).step_parents_created,
        1,
        "salvage arrival creates the twin"
    );
    // Place the twin, flush the buffered salvage into it, and only then
    // let it run: it finds the answer already there and never spawns c'.
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Salvage(_)));
    assert_eq!(cl.stats(3).salvage_before_spawn, 1);
    cl.settle();
    cl.assert_answer();
    assert_eq!(cl.stats(2).tasks_created, 1, "c' is never spawned");
}

#[test]
fn case5_result_arrives_after_twin_invoked_before_c_prime() {
    let mut cl = Cluster::new();
    cl.spawn_c();
    cl.kill(1);
    // The failure notice reaches g first: p' is reproduced proactively.
    cl.notice(0, 1);
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    // Now c completes; its salvage flows through g straight to p' (which
    // has not run yet, so c' is not invoked).
    cl.run_ready(2);
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Result(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Salvage(_)));
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Salvage(_)));
    assert_eq!(cl.stats(3).salvage_before_spawn, 1);
    cl.settle();
    cl.assert_answer();
    assert_eq!(cl.stats(2).tasks_created, 1, "c' is never spawned");
}

#[test]
fn case6_result_arrives_after_c_prime_invoked() {
    let mut cl = Cluster::new();
    cl.spawn_c();
    cl.kill(1);
    cl.notice(0, 1);
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    cl.run_ready(3); // p' runs: c' is invoked (spawn sits in the pool)
                     // c (the orphan) completes now and its salvage reaches p'.
    cl.run_ready(2);
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Result(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Salvage(_)));
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Salvage(_)));
    assert_eq!(
        cl.stats(3).salvage_after_spawn,
        1,
        "supplied after c' was demanded"
    );
    // p' can complete immediately; c' is now a duplicate in flight.
    cl.settle();
    cl.assert_answer();
    assert_eq!(cl.stats(2).tasks_created, 2, "c' ran as a duplicate");
    // The duplicate's answer was ignored somewhere along the way.
    let ignored = cl.stats(3).duplicate_results_ignored + cl.stats(3).stale_messages_ignored;
    assert!(ignored >= 1, "duplicate answer must be discarded");
}

#[test]
fn case7_result_arrives_after_c_prime_completed() {
    let mut cl = Cluster::new();
    cl.spawn_c();
    cl.kill(1);
    cl.notice(0, 1);
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    cl.run_ready(3); // p' invokes c'
    cl.deliver_where(|to, m| *to == ProcId(2) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Ack { .. }));
    cl.run_ready(2); // c' completes first ("late invocation may yield a result faster")
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Result(_)));
    // Now the original orphan finally completes.
    cl.run_ready(2);
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Result(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Salvage(_)));
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Salvage(_)));
    cl.settle();
    cl.assert_answer();
    assert!(
        cl.stats(3).duplicate_results_ignored >= 1,
        "the orphan's late answer is the ignored duplicate"
    );
}

#[test]
fn case8_result_arrives_after_everything_completed() {
    let mut cl = Cluster::new();
    cl.spawn_c();
    cl.kill(1);
    cl.notice(0, 1);
    // Run the twin's path to full completion.
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    cl.run_ready(3);
    cl.deliver_where(|to, m| *to == ProcId(2) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Ack { .. }));
    cl.run_ready(2);
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Result(_)));
    cl.run_ready(3); // p' completes
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Result(_)));
    cl.run_ready(0); // g completes; root answer leaves
    cl.deliver_where(|to, _| to.is_super_root());
    cl.assert_answer();
    // The orphan finally completes; its result wanders in after the whole
    // computation finished and is discarded ("the processor which contained
    // P' may no longer recognize the arrived answer").
    let dropped_before = cl.stats(0).salvage_dropped + cl.stats(0).stale_messages_ignored;
    cl.run_ready(2);
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Result(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Salvage(_)));
    cl.settle();
    let dropped_after = cl.stats(0).salvage_dropped + cl.stats(0).stale_messages_ignored;
    assert!(
        dropped_after > dropped_before,
        "late packet must be discarded"
    );
    cl.assert_answer();
}
