//! The recovery-policy zoo: the paper's eager scheme is now one point in
//! a pluggable design space ([`splice::core::policy`]), and this suite
//! holds the three named policies to their contracts.
//!
//! * **Eager is the paper, bit-for-bit.** The refactor that introduced the
//!   `RecoveryPolicy` seam must be invisible under the default policy: the
//!   canonical trace checksums of a fault-free and a mid-run-crash fib(14)
//!   are pinned to the values captured *before* the seam existed.
//! * **Lazy is weak recovery.** A dead child is marked lost, not reissued;
//!   a subtree whose result is never demanded costs zero reissues, and one
//!   whose result *is* demanded is rebuilt exactly when the owner blocks
//!   on it.
//! * **MultiCheckpoint buys replay.** Streaming completed child results
//!   back to the checkpoint owner lets a reissued twin preload them and
//!   replay strictly fewer waves after a late crash — and a second crash
//!   during the rebuild still finds the preloads (clone, not drain).
//!
//! All three policies must complete fib(16) with the reference answer
//! through a mid-run crash on every backend: the three deterministic
//! simulators here, the threaded runtime, and the multi-process machine
//! (real `SIGKILL`).

use splice::core::config::RecoveryMode;
use splice::core::engine::{Action, Engine};
use splice::core::ids::{ProcId, TaskAddr, TaskKey};
use splice::core::packet::{Msg, TaskLink, TaskPacket};
use splice::core::place::ScriptedPlacer;
use splice::core::policy::{PolicyKind, PolicySpec};
use splice::core::sink::ActionSink;
use splice::core::{Config, LevelStamp};
use splice::lang::parser::parse;
use splice::lang::wave::Demand;
use splice::lang::Value;
use splice::prelude::*;
use splice::runtime::{run_plan, RuntimeConfig};
use splice::sim::{execute, Backend};
use splice::simnet::trace::{TraceKind, TraceMode};
use std::collections::VecDeque;
use std::sync::Arc;

fn cfg(n: u32) -> MachineConfig {
    let mut c = MachineConfig::new(n);
    c.policy = Policy::RoundRobin;
    c.recovery.mode = RecoveryMode::Splice;
    c.recovery.load_beacon_period = 0;
    c
}

/// Crashes worker processor 1 in the middle of the fault-free DES
/// timeline of `c`, so the fault demonstrably lands mid-run.
fn mid_worker_crash(c: &MachineConfig, w: &Workload) -> FaultPlan {
    let base = run_workload(c.clone(), w, &FaultPlan::none());
    assert!(base.completed, "fault-free baseline stalled");
    FaultPlan::crash_at(1, VirtualTime(base.finish.ticks() / 2))
}

// ---------------------------------------------------------------------
// Eager == the pre-refactor engine, bit for bit
// ---------------------------------------------------------------------

/// The golden pins: canonical trace checksums of the default (Eager)
/// policy, captured on the engine *before* the `RecoveryPolicy` seam was
/// introduced. Any drift here means the refactor changed the paper's
/// protocol — new message kinds leaking into Eager runs, reordered
/// recovery actions, anything.
#[test]
fn eager_reproduces_pre_refactor_golden_traces() {
    let w = Workload::fib(14);
    let mut c = cfg(4);
    c.trace = TraceMode::Checksum;
    assert_eq!(
        c.recovery.policy,
        PolicySpec::eager(),
        "Eager is the default"
    );

    let (free, _) = execute(Backend::Des, c.clone(), &w, &FaultPlan::none());
    assert!(free.completed);
    assert_eq!(free.policy, PolicyKind::Eager);
    assert_eq!(
        free.finish,
        VirtualTime(16_328),
        "fault-free finish drifted"
    );
    assert_eq!(free.trace.events, 7_920, "fault-free event count drifted");
    assert_eq!(
        free.trace.stream, 0x58a9_f49d_f6cc_0aad,
        "fault-free stream checksum drifted: got {:#018x}",
        free.trace.stream
    );
    assert_eq!(
        free.trace.semantic, 0xa8a9_f812_825f_922c,
        "fault-free semantic checksum drifted: got {:#018x}",
        free.trace.semantic
    );

    let plan = FaultPlan::crash_at(1, VirtualTime(8_164));
    let (crash, _) = execute(Backend::Des, c, &w, &plan);
    assert!(crash.completed);
    assert_eq!(crash.result, Some(w.reference_result().unwrap()));
    assert_eq!(crash.finish, VirtualTime(39_883), "crash finish drifted");
    assert_eq!(crash.trace.events, 17_672, "crash event count drifted");
    assert_eq!(
        crash.trace.stream, 0x6719_742e_5ba2_9024,
        "crash stream checksum drifted: got {:#018x}",
        crash.trace.stream
    );
    assert_eq!(
        crash.trace.semantic, 0xcc60_c100_b665_2b6e,
        "crash semantic checksum drifted: got {:#018x}",
        crash.trace.semantic
    );
}

/// Non-default policies announce themselves once at launch in the trace;
/// Eager stays silent so the golden stream above cannot see the seam.
#[test]
fn non_eager_policies_announce_themselves_in_the_trace() {
    let w = Workload::fib(8);
    let mut lazy = cfg(2);
    lazy.trace = TraceMode::Full;
    lazy.recovery.policy = PolicySpec::lazy();
    let (r, events) = execute(Backend::Des, lazy, &w, &FaultPlan::none());
    assert!(r.completed);
    assert_eq!(r.policy, PolicyKind::Lazy);
    let tags: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Policy { kind, tier, every } => Some((kind, tier, every)),
            _ => None,
        })
        .collect();
    assert_eq!(tags, vec![(PolicyKind::Lazy.tag(), 2, 0)]);

    let mut eager = cfg(2);
    eager.trace = TraceMode::Full;
    let (_, events) = execute(Backend::Des, eager, &w, &FaultPlan::none());
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Policy { .. })),
        "Eager must not emit a policy event (golden stream would drift)"
    );
}

// ---------------------------------------------------------------------
// Every policy x every backend completes through a mid-run crash
// ---------------------------------------------------------------------

#[test]
fn every_policy_completes_fib16_through_mid_run_crash_in_sim() {
    let w = Workload::fib(16);
    let expected = w.reference_result().unwrap();
    for kind in PolicyKind::ALL {
        for backend in Backend::ALL {
            let mut c = cfg(4);
            if backend == Backend::ParallelReactor {
                c.threads = 2;
            }
            c.recovery.policy = PolicySpec::of(kind);
            let plan = mid_worker_crash(&c, &w);
            let (r, _) = execute(backend, c, &w, &plan);
            assert!(r.completed, "{kind} on {backend} stalled: {r}");
            assert_eq!(
                r.result,
                Some(expected.clone()),
                "{kind} on {backend} got the wrong answer"
            );
            assert_eq!(r.policy, kind, "{backend} misreported the policy");
        }
    }
}

#[test]
fn every_policy_completes_fib16_through_mid_run_crash_on_runtime() {
    let w = Workload::fib(16);
    let expected = w.reference_result().unwrap();
    for kind in PolicyKind::ALL {
        let mut c = RuntimeConfig::new(4);
        c.recovery.mode = RecoveryMode::Splice;
        c.recovery.policy = PolicySpec::of(kind);
        let plan = FaultPlan::crash_at(1, VirtualTime(400));
        let r = run_plan(c, &w, &plan);
        assert_eq!(
            r.result,
            Some(expected.clone()),
            "{kind} on the threaded runtime got the wrong answer"
        );
        assert_eq!(r.policy, kind, "runtime misreported the policy");
    }
}

/// The multi-process leg: a real `kill -9` of a worker process mid-run,
/// once per policy. The policy travels in the Init handshake, so every
/// worker process runs the configured scheme.
#[cfg(unix)]
#[test]
fn every_policy_completes_fib16_through_sigkill_on_process_backend() {
    use splice::sim::proc::{run_process, ProcConfig};
    use splice::simnet::fault::ProcessFaultPlan;
    use std::path::PathBuf;

    let w = Workload::fib(16);
    let expected = w.reference_result().unwrap();
    for kind in PolicyKind::ALL {
        let mut c = ProcConfig::new(4, 1);
        c.worker_bin = Some(PathBuf::from(env!("CARGO_BIN_EXE_splice-proc-worker")));
        c.recovery.mode = RecoveryMode::Splice;
        c.recovery.ack_timeout = 12_000;
        c.recovery.policy = PolicySpec::of(kind);
        let plan = ProcessFaultPlan::none().kill_shard(1, VirtualTime(1_000));
        let r = run_process(&c, &w, &plan).expect("launch");
        assert!(r.completed, "{kind} through SIGKILL stalled: {r}");
        assert_eq!(
            r.result,
            Some(expected.clone()),
            "{kind} through SIGKILL got the wrong answer"
        );
        assert_eq!(r.policy, kind, "process backend misreported the policy");
    }
}

// ---------------------------------------------------------------------
// MultiCheckpoint: strictly fewer replayed waves after a late crash
// ---------------------------------------------------------------------

/// A late crash under Eager replays the dead processor's subtrees from
/// their spawn-time checkpoints — every completed-but-unreported child
/// result below a dead parent is recomputed. MultiCheckpoint streamed
/// those results back to the checkpoint owners as they completed, so the
/// twins preload them and the machine runs strictly fewer waves.
#[test]
fn multickpt_replays_strictly_fewer_waves_than_eager_after_late_crash() {
    let w = Workload::fib(14);
    let c = cfg(4);
    let base = run_workload(c.clone(), &w, &FaultPlan::none());
    assert!(base.completed);
    let plan = FaultPlan::crash_at(1, VirtualTime(base.finish.ticks() * 3 / 4));

    let (eager, _) = execute(Backend::Des, c.clone(), &w, &plan);
    let mut mc = c;
    mc.recovery.policy = PolicySpec::multi_checkpoint(1);
    let (multi, _) = execute(Backend::Des, mc, &w, &plan);

    for r in [&eager, &multi] {
        assert!(r.completed, "crash run stalled: {r}");
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }
    assert_eq!(eager.stats.recheckpoints, 0);
    assert!(multi.stats.recheckpoints > 0, "nothing was re-checkpointed");
    assert!(
        multi.stats.waves_run < eager.stats.waves_run,
        "preloaded twins must replay strictly fewer waves: multickpt {} vs eager {}",
        multi.stats.waves_run,
        eager.stats.waves_run
    );
}

// ---------------------------------------------------------------------
// Engine-level scripts: the policies' defining moments, forced exactly
// ---------------------------------------------------------------------

/// A hand-driven cluster of four engines (the `eight_cases` harness shape)
/// so tests can force exact message orders and fault timings.
struct Cluster {
    engines: Vec<Engine>,
    pool: VecDeque<(ProcId, ProcId, Msg)>,
    dead: Vec<bool>,
    root_result: Option<Value>,
}

impl Cluster {
    fn new(
        source: &str,
        root_fn: &str,
        args: Vec<Value>,
        build: impl Fn(u32) -> (Config, ScriptedPlacer),
    ) -> (Cluster, TaskPacket) {
        let parsed = parse(source).unwrap();
        let program = Arc::new(parsed.program);
        let f = program.lookup(root_fn).unwrap();
        let mut engines = Vec::new();
        for i in 0..4u32 {
            let (cfg, placer) = build(i);
            engines.push(Engine::new(
                ProcId(i),
                program.clone(),
                cfg,
                Box::new(placer),
            ));
        }
        let packet = TaskPacket {
            stamp: LevelStamp::root().child(1),
            demand: Demand::new(f, args),
            parent: TaskLink::super_root(),
            ancestors: vec![TaskLink::super_root()],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        };
        (
            Cluster {
                engines,
                pool: VecDeque::new(),
                dead: vec![false; 4],
                root_result: None,
            },
            packet,
        )
    }

    fn absorb(&mut self, from: ProcId, sink: &mut ActionSink) {
        for a in sink.drain() {
            match a {
                Action::Send { to, msg } => self.pool.push_back((from, to, msg)),
                Action::SetTimer { .. } => {}
            }
        }
    }

    /// Injects the root task on processor 0 and discards the super-root ack.
    fn launch(&mut self, packet: TaskPacket) {
        let mut sink = ActionSink::new();
        self.engines[0].on_message(Msg::spawn(packet), &mut sink);
        self.absorb(ProcId(0), &mut sink);
        self.pool.retain(|(_, to, _)| !to.is_super_root());
    }

    fn deliver_where(&mut self, mut pred: impl FnMut(&ProcId, &Msg) -> bool) -> usize {
        let mut delivered = 0;
        let mut remaining = VecDeque::new();
        while let Some((from, to, msg)) = self.pool.pop_front() {
            if !pred(&to, &msg) {
                remaining.push_back((from, to, msg));
                continue;
            }
            delivered += 1;
            if to.is_super_root() {
                if let Msg::Result(rp) = msg {
                    self.root_result = Some(rp.value);
                }
                continue;
            }
            if self.dead[to.0 as usize] {
                if self.dead[from.0 as usize] {
                    continue;
                }
                let mut sink = ActionSink::new();
                self.engines[from.0 as usize].on_send_failed(to, msg, &mut sink);
                self.absorb(from, &mut sink);
                continue;
            }
            if self.dead[from.0 as usize] {
                continue;
            }
            let mut sink = ActionSink::new();
            self.engines[to.0 as usize].on_message(msg, &mut sink);
            self.absorb(to, &mut sink);
        }
        self.pool = remaining;
        delivered
    }

    fn settle(&mut self) {
        for _ in 0..64 {
            let moved = self.deliver_where(|_, _| true);
            let ran = self.run_all_ready();
            if moved == 0 && ran == 0 {
                return;
            }
        }
        panic!("cluster did not settle");
    }

    fn run_ready(&mut self, proc: u32) -> usize {
        let mut ran = 0;
        while let Some(key) = self.engines[proc as usize].pop_ready() {
            if self.dead[proc as usize] {
                break;
            }
            let mut sink = ActionSink::new();
            self.engines[proc as usize].run_wave(key, &mut sink);
            self.absorb(ProcId(proc), &mut sink);
            ran += 1;
        }
        ran
    }

    fn run_all_ready(&mut self) -> usize {
        let mut ran = 0;
        for p in 0..4 {
            if !self.dead[p as usize] {
                ran += self.run_ready(p);
            }
        }
        ran
    }

    fn kill(&mut self, proc: u32) {
        self.dead[proc as usize] = true;
    }

    fn notice(&mut self, to: u32, dead: u32) {
        let mut sink = ActionSink::new();
        self.engines[to as usize].on_message(Msg::FailureNotice { dead: ProcId(dead) }, &mut sink);
        self.absorb(ProcId(to), &mut sink);
    }

    fn stats(&self, proc: u32) -> &splice::core::ProcStats {
        self.engines[proc as usize].stats()
    }

    fn total_reissues(&self) -> u64 {
        self.engines.iter().map(|e| e.stats().reissues).sum()
    }

    fn pool_has_spawn(&self) -> bool {
        self.pool.iter().any(|(_, _, m)| matches!(m, Msg::Spawn(_)))
    }
}

const TWO_BRANCH: &str = r#"
(def b1 (x) (* x 2))
(def b2 (x) (* x 3))
(def p (x) (+ (b1 x) (b2 x)))
"#;

fn root_stamp() -> LevelStamp {
    LevelStamp::root().child(1)
}

/// Root task `p` on processor 0; its two children pinned to 1 and 3.
fn two_branch_cluster(spec: PolicySpec, mode: RecoveryMode) -> (Cluster, TaskPacket) {
    Cluster::new(TWO_BRANCH, "p", vec![Value::Int(5)], move |_| {
        let mut cfg = Config::with_mode(mode);
        cfg.load_beacon_period = 0;
        cfg.policy = spec;
        let mut placer = ScriptedPlacer::new(vec![ProcId(3), ProcId(2)]);
        placer.assign(root_stamp().child(1), ProcId(1));
        placer.assign(root_stamp().child(2), ProcId(3));
        (cfg, placer)
    })
}

/// Spawns both branches and delivers their placement acks.
fn spawn_branches(cl: &mut Cluster, packet: TaskPacket) {
    cl.launch(packet);
    cl.run_ready(0); // p's wave demands b1 and b2
    cl.deliver_where(|_, m| matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
}

/// Lazy's defining economy: a crashed subtree whose result is *never*
/// demanded costs zero reissues. The root task here is the child of a
/// remote parent (processor 2); when that parent's processor dies too
/// (rollback mode: orphans suicide), the lost branch b1 is simply
/// abandoned. Eager, fed the identical script, pays a reissue up front.
#[test]
fn lazy_never_rebuilds_a_subtree_nobody_demands() {
    for (spec, want_reissues) in [(PolicySpec::lazy(), 0u64), (PolicySpec::eager(), 1u64)] {
        let (mut cl, mut packet) = two_branch_cluster(spec, RecoveryMode::Rollback);
        // The root task is itself a child of a task on processor 2.
        let parent = TaskLink::new(TaskAddr::new(ProcId(2), TaskKey(0)), LevelStamp::root());
        packet.parent = parent.clone();
        packet.ancestors = vec![parent];
        spawn_branches(&mut cl, packet);

        // b1's host dies. Lazy marks the branch lost and does nothing —
        // b2 is alive and may yet unblock p. Eager reissues immediately.
        cl.kill(1);
        cl.notice(0, 1);
        assert_eq!(cl.total_reissues(), want_reissues, "{spec:?}");
        if want_reissues == 0 {
            assert!(!cl.pool_has_spawn(), "lazy queued a rebuild spawn");
        }

        // p's parent dies: p is an orphan, suicides (rollback), and takes
        // its demand for b1 to the grave. Nothing may rebuild b1 now.
        cl.kill(2);
        cl.notice(0, 2);
        cl.settle();
        assert_eq!(cl.stats(0).orphans_suicided, 1, "{spec:?}");
        assert_eq!(cl.total_reissues(), want_reissues, "{spec:?}");
        let rebuilds: u64 = cl.engines.iter().map(|e| e.stats().lazy_rebuilds).sum();
        assert_eq!(rebuilds, 0, "{spec:?}: nobody demanded the subtree");
    }
}

/// Lazy's completeness half: once the owner's progress actually blocks on
/// the lost branch (the live branch has delivered), the rebuild happens —
/// exactly once, counted in `lazy_rebuilds`, and the answer is right.
#[test]
fn lazy_rebuilds_exactly_when_the_owner_blocks_on_the_loss() {
    let (mut cl, packet) = two_branch_cluster(PolicySpec::lazy(), RecoveryMode::Splice);
    spawn_branches(&mut cl, packet);

    cl.kill(1);
    cl.notice(0, 1);
    assert_eq!(cl.total_reissues(), 0, "rebuild before demand");
    assert!(!cl.pool_has_spawn());

    // The live branch completes: p is now blocked solely on the lost b1,
    // so the deferred rebuild fires (fallback places b1' on processor 3).
    cl.run_ready(3);
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Result(_)));
    assert_eq!(
        cl.stats(0).lazy_rebuilds,
        1,
        "blocking must trigger the rebuild"
    );
    assert_eq!(cl.stats(0).reissues, 1);
    cl.settle();
    assert_eq!(cl.root_result, Some(Value::Int(25)), "5*2 + 5*3");
}

/// The grandparent chain from `eight_cases`, with a MultiCheckpoint twist:
/// `g` (proc 0) -> `p` (proc 1) -> `c` (proc 2).
const CHAIN: &str = r#"
(def c (x) (* x 2))
(def p (x) (+ 1 (c x)))
(def g () (+ 1 (p 3)))
"#;

/// Double crash during rebuild: the checkpoint's preloads must survive the
/// first reissue (clone, not drain). `p` re-checkpoints c's completed
/// result to `g`; `p`'s host dies, twin `p'` goes to processor 3 and gets
/// the preload; processor 3 dies before `p'` runs; twin `p''` (processor
/// 2) must *still* receive the preload — and therefore never respawn `c`.
#[test]
fn second_crash_during_rebuild_still_finds_the_preloads() {
    let g_stamp = LevelStamp::root().child(1);
    let p_stamp = g_stamp.child(1);
    let c_stamp = p_stamp.child(1);
    let (mut cl, packet) = {
        let p_stamp = p_stamp.clone();
        let c_stamp = c_stamp.clone();
        Cluster::new(CHAIN, "g", vec![], move |_| {
            let mut cfg = Config::with_mode(RecoveryMode::Splice);
            cfg.load_beacon_period = 0;
            cfg.policy = PolicySpec::multi_checkpoint(1);
            let mut placer = ScriptedPlacer::new(vec![ProcId(1), ProcId(3), ProcId(2)]);
            placer.assign(p_stamp.clone(), ProcId(1));
            placer.assign(c_stamp.clone(), ProcId(2));
            (cfg, placer)
        })
    };
    cl.launch(packet);
    cl.run_ready(0); // g demands p
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    cl.run_ready(1); // p demands c
    cl.deliver_where(|to, m| *to == ProcId(2) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Ack { .. }));
    cl.run_ready(2); // c completes
    cl.deliver_where(|to, m| *to == ProcId(1) && matches!(m, Msg::Result(_)));
    // p (re-checkpoint period 1) streams c's result back to g's table.
    assert_eq!(cl.stats(1).recheckpoints, 1, "p must re-checkpoint");
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ckpt(_)));

    // First crash: p's host. g reissues twin p' -> processor 3, and the
    // placement ACK flushes the preloaded result to it as a salvage.
    cl.kill(1);
    cl.notice(0, 1);
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    cl.deliver_where(|to, m| *to == ProcId(3) && matches!(m, Msg::Salvage(_)));
    assert_eq!(cl.stats(3).salvage_before_spawn, 1, "p' must be preloaded");

    // Second crash, *before p' ever runs*: the twin's host dies too. The
    // re-reissue must find the preloads still in the checkpoint.
    cl.kill(3);
    cl.notice(0, 3);
    cl.deliver_where(|to, m| *to == ProcId(2) && matches!(m, Msg::Spawn(_)));
    cl.deliver_where(|to, m| *to == ProcId(0) && matches!(m, Msg::Ack { .. }));
    cl.deliver_where(|to, m| *to == ProcId(2) && matches!(m, Msg::Salvage(_)));
    assert_eq!(
        cl.stats(2).salvage_before_spawn,
        1,
        "p'' lost the preload: the first reissue drained the checkpoint"
    );

    cl.settle();
    assert_eq!(cl.root_result, Some(Value::Int(8)), "1 + (1 + 3*2)");
    assert_eq!(
        cl.stats(2).tasks_created,
        2,
        "only c and p'' may ever run on processor 2 — a third task means \
         p'' recomputed c instead of preloading it"
    );
}
