//! The paper's correctness theorem (§4.3), as a property test.
//!
//! "A necessary condition for completing the root evaluation is to
//! satisfactorily compute all immediate descendants of the root. ...
//! every task is flawlessly reproducible even if some processor may fail
//! during the evaluation."
//!
//! Property: for any workload, machine size, topology, placement policy,
//! recovery mode, and fault plan that leaves at least one processor alive,
//! the distributed machine's answer equals the reference evaluation.

use proptest::prelude::*;
use splice::prelude::*;

fn workload_for(idx: usize, size: u8) -> Workload {
    match idx % 6 {
        0 => Workload::fib(9 + (size % 4) as i64),
        1 => Workload::dcsum(0, 32 + (size % 64) as i64),
        2 => Workload::quicksort(10 + (size % 12) as usize, 42),
        3 => Workload::nqueens(4),
        4 => Workload::binomial(9 + (size % 3) as i64, 4),
        _ => Workload::poly(8 + (size % 8) as usize, 3, 5),
    }
}

fn topology_for(idx: usize, n: u32) -> Topology {
    match idx % 5 {
        0 => Topology::Complete { n },
        1 => Topology::Ring { n },
        2 => Topology::Line { n },
        3 => Topology::Star { n },
        _ => Topology::Mesh {
            w: 2,
            h: n.div_ceil(2),
            wrap: idx.is_multiple_of(2),
        },
    }
}

fn policy_for(idx: usize) -> Policy {
    Policy::ALL[idx % Policy::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free: every machine shape computes the reference answer.
    #[test]
    fn fault_free_machines_agree_with_reference(
        widx in 0usize..6,
        size in 0u8..255,
        tidx in 0usize..5,
        pidx in 0usize..4,
        n in 2u32..9,
    ) {
        let w = workload_for(widx, size);
        let topology = topology_for(tidx, n);
        let n = topology.len();
        let mut cfg = MachineConfig::new(n);
        cfg.topology = topology;
        cfg.policy = policy_for(pidx);
        let report = run_workload(cfg, &w, &FaultPlan::none());
        prop_assert!(report.completed, "{} stalled", w.name);
        prop_assert_eq!(report.result, Some(w.reference_result().unwrap()), "{}", &w.name);
    }

    /// Single crash at an arbitrary instant, both recovery algorithms.
    #[test]
    fn single_crash_recovers(
        widx in 0usize..6,
        size in 0u8..255,
        pidx in 0usize..4,
        n in 3u32..9,
        victim_sel in 0u32..100,
        frac in 0.05f64..0.95,
        rollback in any::<bool>(),
    ) {
        let w = workload_for(widx, size);
        let mode = if rollback { RecoveryMode::Rollback } else { RecoveryMode::Splice };
        let mut cfg = MachineConfig::new(n);
        cfg.policy = policy_for(pidx);
        cfg.recovery.mode = mode;
        let fault_free = run_workload(cfg.clone(), &w, &FaultPlan::none());
        prop_assert!(fault_free.completed);
        let crash = VirtualTime((fault_free.finish.ticks() as f64 * frac) as u64 + 1);
        let victim = victim_sel % n;
        let report = run_workload(cfg, &w, &FaultPlan::crash_at(victim, crash));
        prop_assert!(report.completed, "{} with {:?} crash@{} of {} stalled",
            w.name, mode, crash, victim);
        prop_assert_eq!(report.result, Some(w.reference_result().unwrap()),
            "{} {:?}", &w.name, mode);
    }

    /// Multiple random crashes; as long as one processor survives, the
    /// answer still arrives and still matches.
    #[test]
    fn multi_crash_recovers(
        widx in 0usize..6,
        size in 0u8..255,
        n in 4u32..10,
        k in 1usize..3,
        seed in any::<u64>(),
        rollback in any::<bool>(),
    ) {
        let w = workload_for(widx, size);
        let mode = if rollback { RecoveryMode::Rollback } else { RecoveryMode::Splice };
        let mut cfg = MachineConfig::new(n);
        cfg.recovery.mode = mode;
        let fault_free = run_workload(cfg.clone(), &w, &FaultPlan::none());
        let t = fault_free.finish.ticks();
        let faults = FaultPlan::random_crashes(
            k, n, (VirtualTime(t / 10), VirtualTime(t)), &[], seed);
        let report = run_workload(cfg, &w, &faults);
        prop_assert!(report.completed, "{} with {:?} {} crashes stalled", w.name, mode, k);
        prop_assert_eq!(report.result, Some(w.reference_result().unwrap()),
            "{} {:?}", &w.name, mode);
    }

    /// Determinism: identical configurations yield identical traces.
    #[test]
    fn identical_runs_are_bitwise_identical(
        widx in 0usize..6,
        n in 2u32..8,
        seed in any::<u64>(),
        frac in 0.1f64..0.9,
    ) {
        let w = workload_for(widx, 7);
        let mut cfg = MachineConfig::new(n);
        cfg.seed = seed;
        let fault_free = run_workload(cfg.clone(), &w, &FaultPlan::none());
        let crash = VirtualTime((fault_free.finish.ticks() as f64 * frac) as u64);
        let faults = FaultPlan::crash_at(seed as u32 % n, crash);
        let a = run_workload(cfg.clone(), &w, &faults);
        let b = run_workload(cfg, &w, &faults);
        prop_assert_eq!(a.finish, b.finish);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.delivered, b.delivered);
    }
}
