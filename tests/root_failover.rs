//! Cross-backend acceptance of the replicated super-root: the paper's
//! §4.3.1 reliable coordinator is now a quorum of N crash-able replicas
//! (lowest-ranked live replica leads). Every backend — DES, cooperative
//! reactor, parallel reactor, threaded runtime — must complete fib(16)
//! with the reference answer when the acting primary is crashed mid-run,
//! and must report the takeover in `root_failovers`. (The multi-process
//! backend's leg, which SIGKILLs the primary's host, lives in
//! `tests/process_backend.rs`.)
//!
//! The regression half pins the degenerate case: a single-replica quorum
//! is the old reliable singleton bit-for-bit — replica count changes
//! nothing observable in a fault-free run, and crashing the only replica
//! stalls the machine instead of hanging it.

use splice::core::config::RecoveryMode;
use splice::gradient::Policy;
use splice::prelude::*;
use splice::runtime::{run_plan, RuntimeConfig};
use splice::sim::parallel::run_parallel_reactor;
use splice::sim::reactor::run_reactor;
use splice::sim::{execute, Backend};
use splice::simnet::trace::TraceMode;

fn cfg(n: u32) -> MachineConfig {
    let mut c = MachineConfig::new(n);
    c.policy = Policy::RoundRobin;
    c.recovery.mode = RecoveryMode::Splice;
    c.recovery.load_beacon_period = 0;
    c
}

/// A plan that crashes the acting primary (rank 0 leads at launch) in the
/// middle of the fault-free DES timeline, so the crash demonstrably lands
/// while the run is in flight (faults only push completion later).
fn mid_primary_crash(c: &MachineConfig, w: &Workload) -> FaultPlan {
    let base = run_workload(c.clone(), w, &FaultPlan::none());
    assert!(base.completed, "fault-free baseline stalled");
    FaultPlan::none().crash_root_replica(0, VirtualTime(base.finish.ticks() / 2))
}

#[test]
fn des_completes_fib16_through_primary_crash() {
    let w = Workload::fib(16);
    let c = cfg(4);
    let plan = mid_primary_crash(&c, &w);
    let r = run_workload(c, &w, &plan);
    assert!(r.completed, "failover run stalled: {r}");
    assert_eq!(r.result, Some(w.reference_result().unwrap()));
    assert!(r.root_failovers >= 1, "no failover recorded: {r}");
    assert_eq!(r.root_replicas, 3);
}

#[test]
fn reactor_completes_fib16_through_primary_crash() {
    let w = Workload::fib(16);
    let c = cfg(4);
    let plan = mid_primary_crash(&c, &w);
    let r = run_reactor(c, &w, &plan);
    assert!(r.completed, "failover run stalled: {r}");
    assert_eq!(r.result, Some(w.reference_result().unwrap()));
    assert!(r.root_failovers >= 1, "no failover recorded: {r}");
}

#[test]
fn parallel_reactor_completes_fib16_through_primary_crash() {
    let w = Workload::fib(16);
    let mut c = cfg(4);
    c.threads = 2;
    let plan = mid_primary_crash(&c, &w);
    let r = run_parallel_reactor(c, &w, &plan);
    assert!(r.completed, "failover run stalled: {r}");
    assert_eq!(r.result, Some(w.reference_result().unwrap()));
    assert!(r.root_failovers >= 1, "no failover recorded: {r}");
}

/// The threaded runtime maps the plan's virtual fault instants onto the
/// wall clock, so a fast host can finish before the crash lands
/// (`root_failovers == 0`); the test retries with earlier instants until
/// the takeover demonstrably happened mid-run.
#[test]
fn runtime_completes_fib16_through_primary_crash() {
    let w = Workload::fib(16);
    let expected = w.reference_result().unwrap();
    for at in [2_000u64, 400, 50] {
        let mut c = RuntimeConfig::new(4);
        c.recovery.mode = RecoveryMode::Splice;
        let plan = FaultPlan::none().crash_root_replica(0, VirtualTime(at));
        let r = run_plan(c, &w, &plan);
        assert_eq!(
            r.result,
            Some(expected.clone()),
            "failover run failed (crash at t={at})"
        );
        assert_eq!(r.root_replicas, 3);
        if r.root_failovers >= 1 {
            return;
        }
        // The run beat the crash to the finish line; retry earlier.
    }
    panic!("the crash never landed mid-run, even at t=50");
}

/// The failover path is policy-independent: under the Lazy recovery
/// policy (mark-lost, rebuild-on-demand) a primary-root crash must still
/// fail over to a successor and complete with the reference answer, on
/// every deterministic backend. The super-root quorum's own recovery is
/// not subject to the engine-level policy — only worker subtrees are.
#[test]
fn lazy_policy_fails_over_on_every_sim_backend() {
    use splice::core::policy::{PolicyKind, PolicySpec};
    let w = Workload::fib(16);
    let expected = w.reference_result().unwrap();
    for backend in Backend::ALL {
        let mut c = cfg(4);
        if backend == Backend::ParallelReactor {
            c.threads = 2;
        }
        c.recovery.policy = PolicySpec::lazy();
        let plan = mid_primary_crash(&c, &w);
        let (r, _) = execute(backend, c, &w, &plan);
        assert!(r.completed, "lazy failover stalled on {backend}: {r}");
        assert_eq!(
            r.result,
            Some(expected.clone()),
            "lazy failover got the wrong answer on {backend}"
        );
        assert!(r.root_failovers >= 1, "no failover on {backend}: {r}");
        assert_eq!(r.policy, PolicyKind::Lazy);
    }
}

/// The Lazy failover leg on the threaded runtime. Wall-clock mapped fault
/// instants: retry earlier until the takeover demonstrably landed.
#[test]
fn lazy_policy_fails_over_on_runtime() {
    use splice::core::policy::PolicySpec;
    let w = Workload::fib(16);
    let expected = w.reference_result().unwrap();
    for at in [2_000u64, 400, 50] {
        let mut c = RuntimeConfig::new(4);
        c.recovery.mode = RecoveryMode::Splice;
        c.recovery.policy = PolicySpec::lazy();
        let plan = FaultPlan::none().crash_root_replica(0, VirtualTime(at));
        let r = run_plan(c, &w, &plan);
        assert_eq!(
            r.result,
            Some(expected.clone()),
            "lazy failover run failed (crash at t={at})"
        );
        if r.root_failovers >= 1 {
            return;
        }
    }
    panic!("the crash never landed mid-run, even at t=50");
}

/// The Lazy failover leg on the multi-process machine: `kill -9` the
/// shard hosting the acting primary while every worker runs the Lazy
/// policy (shipped through the Init handshake). Retry earlier instants
/// until the takeover demonstrably landed.
#[cfg(unix)]
#[test]
fn lazy_policy_fails_over_on_process_backend() {
    use splice::core::policy::{PolicyKind, PolicySpec};
    use splice::sim::proc::{run_process, ProcConfig};
    use splice::simnet::fault::ProcessFaultPlan;
    use std::path::PathBuf;

    let w = Workload::fib(16);
    let expected = w.reference_result().unwrap();
    for at in [3_000u64, 1_000, 300] {
        let mut c = ProcConfig::new(4, 1);
        c.worker_bin = Some(PathBuf::from(env!("CARGO_BIN_EXE_splice-proc-worker")));
        c.policy = Policy::RoundRobin;
        c.recovery.mode = RecoveryMode::Splice;
        c.recovery.ack_timeout = 12_000;
        c.recovery.policy = PolicySpec::lazy();
        let plan = ProcessFaultPlan::none().kill_shard(0, VirtualTime(at));
        let r = run_process(&c, &w, &plan).expect("launch");
        assert!(r.completed, "lazy primary-host kill at t={at} stalled: {r}");
        assert_eq!(
            r.result,
            Some(expected.clone()),
            "lazy primary-host kill at t={at} corrupted the answer"
        );
        assert_eq!(r.policy, PolicyKind::Lazy);
        if r.root_failovers >= 1 {
            return;
        }
    }
    panic!("the kill never deposed the acting primary, even at t=300");
}

/// Fault-free, the quorum layer must add zero events: a machine with one
/// replica and a machine with three produce the *identical* full trace,
/// finish instant and event count. This is the bit-for-bit regression
/// guard that `root_replicas: 3` did not change the singleton protocol.
#[test]
fn replica_count_is_inert_without_root_faults() {
    let w = Workload::fib(12);
    let mut c1 = cfg(4);
    c1.trace = TraceMode::Full;
    c1.recovery.root_replicas = 1;
    let mut c3 = cfg(4);
    c3.trace = TraceMode::Full;
    c3.recovery.root_replicas = 3;
    let (r1, e1) = execute(Backend::Des, c1, &w, &FaultPlan::none());
    let (r3, e3) = execute(Backend::Des, c3, &w, &FaultPlan::none());
    assert!(r1.completed && r3.completed);
    assert_eq!(e1, e3, "replica count changed the canonical event stream");
    assert_eq!(r1.finish, r3.finish);
    assert_eq!(r1.events, r3.events);
    assert_eq!(r1.result, r3.result);
    assert_eq!(r1.root_failovers, 0);
    assert_eq!(r3.root_failovers, 0);
    assert_eq!((r1.root_replicas, r3.root_replicas), (1, 3));
}

/// A single-replica quorum crashed mid-run has no successor: the run
/// must stall (a verdict, well under the event budget), never complete,
/// and never count a failover.
#[test]
fn single_replica_crash_stalls_like_the_old_singleton_could_not() {
    let w = Workload::fib(12);
    let mut c = cfg(4);
    c.recovery.root_replicas = 1;
    let max_events = c.max_events;
    let plan = mid_primary_crash(&c, &w);
    let r = run_workload(c, &w, &plan);
    assert!(
        !r.completed,
        "no surviving replica could have assembled this"
    );
    assert!(r.stalled, "quorum death must quiesce as a stall: {r}");
    assert_eq!(r.result, None);
    assert_eq!(r.root_failovers, 0);
    assert!(
        r.events < max_events / 100,
        "stall detection ground through {} events",
        r.events
    );
}
