//! Property test: the calendar event queue pops in *identical*
//! `(time, seq)` order to the binary-heap implementation it replaced.
//!
//! The heap is reconstructed here as the reference model; random schedules
//! interleave pushes and pops and mix near-future deliveries, same-tick
//! ties, far-future timers (ack-timeout and heartbeat horizons, far past
//! the calendar window so the overflow spill is exercised) and occasional
//! pushes earlier than the current drain point. Determinism of whole
//! simulations reduces to this equivalence: the DES loop consumes events
//! in whatever order the queue yields.

use proptest::prelude::*;
use splice::simnet::queue::EventQueue;
use splice::simnet::time::VirtualTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The old implementation, kept verbatim as the executable specification.
struct HeapModel {
    heap: BinaryHeap<ModelEntry>,
    next_seq: u64,
}

struct ModelEntry {
    at: VirtualTime,
    seq: u64,
    tag: u32,
}

impl PartialEq for ModelEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ModelEntry {}
impl PartialOrd for ModelEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ModelEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl HeapModel {
    fn new() -> HeapModel {
        HeapModel {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, at: VirtualTime, tag: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ModelEntry { at, seq, tag });
    }

    fn pop(&mut self) -> Option<(VirtualTime, u32)> {
        self.heap.pop().map(|e| (e.at, e.tag))
    }
}

/// SplitMix64 — the schedule generator's own deterministic stream.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Drives queue and model through one random schedule, checking every pop.
fn run_schedule(seed: u64, ops: usize, span: u64) {
    let mut rng = seed;
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut m = HeapModel::new();
    let mut now: u64 = 0; // time of the last pop (the DES clock)
    let mut tag: u32 = 0;

    for _ in 0..ops {
        let roll = splitmix(&mut rng) % 100;
        if roll < 60 || q.is_empty() {
            // Push. Pick the flavour of delay.
            let at = match splitmix(&mut rng) % 10 {
                // Near-future delivery latency.
                0..=4 => now + splitmix(&mut rng) % span.max(1),
                // Same-tick tie (zero-latency self-send / effect).
                5 | 6 => now,
                // Protocol timer horizons: ack timeout, widened sharded
                // ack timeout, heartbeat-scale far future — all beyond
                // the 16384-tick calendar window at times.
                7 => now + 4_000,
                8 => now + 20_000 + splitmix(&mut rng) % 50_000,
                // Earlier than the drain point (legal on the old heap).
                _ => now.saturating_sub(splitmix(&mut rng) % span.max(1)),
            };
            q.push(VirtualTime(at), tag);
            m.push(VirtualTime(at), tag);
            tag += 1;
        } else {
            let got = q.pop();
            let want = m.pop();
            prop_assert_eq!(
                got,
                want,
                "pop diverged after {} scheduled (seed {})",
                tag,
                seed
            );
            if let Some((t, _)) = got {
                now = t.ticks();
            }
        }
        prop_assert_eq!(q.len(), m.heap.len());
    }
    // Drain both completely: full order must agree.
    loop {
        let got = q.pop();
        let want = m.pop();
        prop_assert_eq!(got, want, "drain diverged (seed {})", seed);
        if got.is_none() {
            break;
        }
    }
    prop_assert!(q.is_empty());
    prop_assert_eq!(q.scheduled_total(), u64::from(tag));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn calendar_queue_pops_in_heap_order(
        seed in any::<u64>(),
        ops in 64usize..512,
        span in 1u64..30_000,
    ) {
        run_schedule(seed, ops, span);
    }
}

#[test]
fn mass_ties_on_one_tick_stay_fifo() {
    // The degenerate schedule the simulator produces at a crash instant:
    // thousands of events on the same tick must drain in insertion order.
    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..5_000 {
        q.push(VirtualTime(1_000), i);
    }
    for i in 0..5_000 {
        assert_eq!(q.pop(), Some((VirtualTime(1_000), i)));
    }
    assert!(q.is_empty());
}
