//! §5.2 multiple faults (experiment E9).
//!
//! "Multiple failures on different branches of a structure do not disturb
//! the recovery algorithm at all. ... However, if both the parent and
//! grandparent processors of a task fail simultaneously, the orphan task
//! would be stranded. ... the resilient structure concept can be further
//! extended to include pointers to the great grandparent and beyond."

use splice::core::config::{CheckpointFilter, RecoveryMode};
use splice::core::packet::MsgKind;
use splice::core::place::ScriptedPlacer;
use splice::prelude::*;
use splice::sim::figure1;
use splice::sim::Machine;

fn figure1_machine(depth: usize) -> Machine {
    let w = figure1::workload();
    let assignments = figure1::stamps();
    let mut cfg = MachineConfig::new(4);
    cfg.recovery.mode = RecoveryMode::Splice;
    cfg.recovery.ancestor_depth = depth;
    cfg.recovery.ckpt_filter = CheckpointFilter::Topmost;
    cfg.recovery.load_beacon_period = 0;
    Machine::with_placer_factory(cfg, &w, move |_| {
        let mut sp = ScriptedPlacer::new(vec![figure1::B, figure1::D, figure1::A, figure1::C]);
        for (_, stamp, proc) in &assignments {
            sp.assign(stamp.clone(), *proc);
        }
        sp.assign_subtree(figure1::stamp_of("b1x"), figure1::B);
        sp.assign_subtree(figure1::stamp_of("b3x"), figure1::B);
        sp.assign_subtree(figure1::stamp_of("b7x"), figure1::B);
        sp.assign_subtree(figure1::stamp_of("a5"), figure1::A);
        Box::new(sp)
    })
}

#[test]
fn faults_on_different_branches_recover_in_parallel() {
    // Two crashes far apart in the tree; splice recovers both
    // independently and the answer is unchanged.
    let w = Workload::mapreduce(0, 32, 8);
    for mode in [RecoveryMode::Rollback, RecoveryMode::Splice] {
        let mut cfg = MachineConfig::new(12);
        cfg.recovery.mode = mode;
        let fault_free = run_workload(cfg.clone(), &w, &FaultPlan::none());
        assert_eq!(
            fault_free.stats.sent_of(MsgKind::FailureNotice),
            0,
            "{mode:?}: no deaths, no gossip"
        );
        let t = fault_free.finish.ticks();
        let faults =
            FaultPlan::crash_at(2, VirtualTime(t / 3)).and(9, VirtualTime(t / 3), FaultKind::Crash);
        let r = run_workload(cfg, &w, &faults);
        assert!(r.completed, "{mode:?} stalled");
        assert_eq!(r.result, Some(w.reference_result().unwrap()), "{mode:?}");
        // Gossip dedup: `known_dead` suppresses re-forwarding, so each of
        // the 12 engines broadcasts each of the 2 deaths at most once to
        // its ≤11 neighbours. Without the dedup every redundant notice
        // (detector broadcast + peer gossip) would echo back out and this
        // bound diverges.
        let notices = r.stats.sent_of(MsgKind::FailureNotice);
        assert!(notices > 0, "{mode:?}: deaths must be gossiped");
        assert!(
            notices <= 2 * 12 * 11,
            "{mode:?}: redundant failure-notice broadcasts: {notices}"
        );
    }
}

#[test]
fn simultaneous_parent_and_grandparent_death_strands_orphans_at_depth_2() {
    // Figure-1 tree; B and C die together. D4's parent (B2 on B) and
    // grandparent (C1 on C) are both gone: with the paper's base scheme
    // (ancestor depth 2) the orphan result is stranded — but the run still
    // completes by recomputation.
    let crash = figure1::crash_instant();
    let m = figure1_machine(2);
    let faults =
        FaultPlan::crash_at(figure1::B.0, crash).and(figure1::C.0, crash, FaultKind::Crash);
    let r = m.run(&faults);
    assert!(r.completed, "depth-2 run stalled");
    assert_eq!(r.result, Some(Value::Int(figure1::TREE_SIZE)));
    assert!(
        r.stats.stranded_orphans > 0,
        "the paper predicts stranded orphans at depth 2: {}",
        r.stats
    );
}

#[test]
fn great_grandparent_chain_rescues_the_same_scenario() {
    // Same double fault with ancestor depth 3 (the §5.2 extension): the
    // orphan results now relay through the great-grandparent and are
    // salvaged through the regenerated spine.
    let crash = figure1::crash_instant();
    let m = figure1_machine(3);
    let faults =
        FaultPlan::crash_at(figure1::B.0, crash).and(figure1::C.0, crash, FaultKind::Crash);
    let r = m.run(&faults);
    assert!(r.completed, "depth-3 run stalled");
    assert_eq!(r.result, Some(Value::Int(figure1::TREE_SIZE)));
    assert_eq!(
        r.stats.stranded_orphans, 0,
        "great-grandparent links must rescue every orphan: {}",
        r.stats
    );
    assert!(
        r.stats.salvaged_results > 0,
        "salvage must flow through the two-level relay: {}",
        r.stats
    );
}

#[test]
fn different_branch_faults_recover_on_the_reactor_with_bounded_gossip() {
    // The E9 different-branches scenario ported to the cooperative
    // reactor: two far-apart crashes, independent recovery, and the same
    // `known_dead` gossip bound the DES test pins — each of the 12 engines
    // broadcasts each of the 2 deaths at most once to its ≤ 11 peers.
    let w = Workload::mapreduce(0, 32, 8);
    let mut cfg = MachineConfig::new(12);
    cfg.recovery.mode = RecoveryMode::Splice;
    let fault_free = splice::sim::run_reactor(cfg.clone(), &w, &FaultPlan::none());
    assert!(fault_free.completed, "reactor baseline stalled");
    assert_eq!(
        fault_free.stats.sent_of(MsgKind::FailureNotice),
        0,
        "no deaths, no gossip"
    );
    let t = fault_free.finish.ticks();
    let faults = FaultPlan::crash_at(2, VirtualTime((t / 3).max(1))).and(
        9,
        VirtualTime((t / 3).max(1)),
        FaultKind::Crash,
    );
    let r = splice::sim::run_reactor(cfg, &w, &faults);
    assert!(r.completed, "reactor multi-fault run stalled");
    assert_eq!(r.result, Some(w.reference_result().unwrap()));
    let notices = r.stats.sent_of(MsgKind::FailureNotice);
    assert!(notices > 0, "deaths must be gossiped");
    assert!(
        notices <= 2 * 12 * 11,
        "redundant failure-notice broadcasts on the reactor: {notices}"
    );
}

#[test]
fn multi_fault_protected_plan_recovers_on_the_threaded_runtime_with_bounded_gossip() {
    // The simulator's multi-fault generator (protected processors
    // included) driving the threaded machine through the shared
    // `run_plan` path, with the same bounded-notice assertion: deaths ×
    // engines × peers is the gossip ceiling `known_dead` dedup enforces.
    use splice::runtime::{run_plan, RuntimeConfig};
    let w = Workload::fib(16);
    let mut cfg = RuntimeConfig::new(4);
    cfg.recovery.mode = RecoveryMode::Splice;
    cfg.recovery.load_beacon_period = 0;
    // Gradient placement gives every engine a beacon neighbourhood to
    // gossip to (round-robin placers have none, so notices would be 0).
    cfg.policy = splice::gradient::Policy::Gradient;
    // 400–1200 units × 25µs = crashes between 10ms and 30ms of fib(16)'s
    // 40ms+ runtime; processor 0 (the launch host) is protected.
    let plan = FaultPlan::random_crashes(2, 4, (VirtualTime(400), VirtualTime(1_200)), &[0], 7);
    assert_eq!(plan.crashes(), 2);
    let r = run_plan(cfg, &w, &plan);
    assert_eq!(r.result, Some(w.reference_result().unwrap()));
    let notices = r.stats.sent_of(MsgKind::FailureNotice);
    assert!(
        notices <= 2 * 4 * 3,
        "redundant failure-notice broadcasts on the runtime: {notices}"
    );
}

#[test]
fn deeper_chains_never_hurt_correctness() {
    let w = Workload::dcsum(0, 96);
    for depth in [2usize, 3, 4, 5] {
        let mut cfg = MachineConfig::new(8);
        cfg.recovery.mode = RecoveryMode::Splice;
        cfg.recovery.ancestor_depth = depth;
        let fault_free = run_workload(cfg.clone(), &w, &FaultPlan::none());
        let t = fault_free.finish.ticks();
        let faults = FaultPlan::random_crashes(2, 8, (VirtualTime(t / 4), VirtualTime(t)), &[], 5);
        let r = run_workload(cfg, &w, &faults);
        assert!(r.completed, "depth {depth} stalled");
        assert_eq!(
            r.result,
            Some(w.reference_result().unwrap()),
            "depth {depth}"
        );
    }
}
