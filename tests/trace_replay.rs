//! Canonical-trace guarantees, end to end: record → replay bit-identity
//! on every deterministic backend, the golden checksum invariants
//! (per-backend stream determinism, cross-backend semantic agreement),
//! ring-buffer accounting in the report, and the fault-plan shrinker on
//! the archived `noisy-double-crash` reproducer.
//!
//! CI runs `replay_smoke` and `shrinker_reduces` by name as the
//! record/replay smoke gate (see `.github/workflows/ci.yml`).

use splice::core::config::RecoveryMode;
use splice::gradient::Policy;
use splice::prelude::*;
use splice::sim::{archived_plan, execute, record, replay, Backend};
use splice::simnet::fault::FaultKind;
use splice::simnet::shrink::{plan_literal, shrink};
use splice::simnet::trace::{first_divergence, TraceKind, TraceMode};

fn flat_cfg(n: u32, threads: u32) -> MachineConfig {
    let mut c = MachineConfig::new(n);
    c.policy = Policy::RoundRobin;
    c.recovery.load_beacon_period = 0;
    c.threads = threads;
    c
}

fn sharded_cfg(shards: u32, per_shard: u32, threads: u32) -> MachineConfig {
    let mut c = MachineConfig::sharded(shards, per_shard, 200);
    c.policy = Policy::RoundRobin;
    c.recovery.mode = RecoveryMode::Splice;
    c.recovery.load_beacon_period = 0;
    c.threads = threads;
    c
}

/// A multi-fault plan on the sharded machine: one mid-run crash, a
/// corrupt aimed at the same victim after death (must apply as a no-op),
/// and a second crash in the other shard.
fn multi_fault_plan() -> FaultPlan {
    FaultPlan::crash_at(1, VirtualTime(2_500))
        .and(1, VirtualTime(2_600), FaultKind::Corrupt)
        .and(3, VirtualTime(3_500), FaultKind::Crash)
}

/// Acceptance gate: recording a multi-fault sharded run and replaying its
/// trace reproduces the `RunReport` bit-identically on every backend.
#[test]
fn replay_smoke_multi_fault_sharded_plan_is_bit_identical() {
    let w = Workload::dcsum(0, 40);
    let plan = multi_fault_plan();
    for backend in Backend::ALL {
        let rec = record(backend, sharded_cfg(2, 2, 2), &w, &plan);
        assert!(rec.report.completed, "{backend}: sharded run stalled");
        assert!(!rec.events.is_empty(), "{backend}: nothing recorded");
        let rp = replay(&rec);
        assert!(
            rp.bit_identical(),
            "{backend}: replay diverged: {:?} report_matches={}",
            rp.divergence,
            rp.report_matches
        );
    }
}

/// Acceptance gate: the shrinker reduces the archived fuzzer-shaped
/// 10-fault plan to its minimal core (the two early crashes, ≤ 3 faults)
/// and the trace diff against the fault-free run names the first event
/// the surviving faults perturb.
#[test]
fn shrinker_reduces_archived_noisy_double_crash() {
    let (plan, procs) = archived_plan("noisy-double-crash").expect("archived plan");
    let w = Workload::fib(10);
    let cfg = flat_cfg(procs, 2);
    let baseline = execute(Backend::Des, cfg.clone(), &w, &plan).0;
    assert!(!baseline.completed, "archived plan must still be failing");

    let mut oracle = |p: &FaultPlan| !execute(Backend::Des, cfg.clone(), &w, p).0.completed;
    let report = shrink(&plan, &mut oracle);
    assert!(
        report.plan.events.len() <= 3,
        "minimal plan still has {} faults:\n{}",
        report.plan.events.len(),
        plan_literal(&report.plan)
    );
    assert!(
        report
            .plan
            .events
            .iter()
            .all(|e| e.kind == FaultKind::Crash),
        "the essential core is crashes only"
    );

    // Trace-diff the minimal failing run against the fault-free run: the
    // first divergent event is where the surviving faults first bite.
    let mut tcfg = cfg.clone();
    tcfg.trace = TraceMode::Full;
    let (_, clean) = execute(Backend::Des, tcfg.clone(), &w, &FaultPlan::none());
    let (_, faulty) = execute(Backend::Des, tcfg, &w, &report.plan);
    let d = first_divergence(&clean, &faulty).expect("a failing run must diverge from clean");
    // The shrinker pulls fault times toward t=1, so the divergence shows
    // up essentially immediately; what matters is that it is *named*.
    assert!(
        !d.to_string().is_empty(),
        "divergence must render a first event"
    );
}

/// Acceptance gate: the shrinker reduces the archived fuzzer-shaped
/// root-failover plan — 7 faults across the processor *and* root-replica
/// axes — to its essential core, the two live root-replica crashes alone
/// (≤ 3 faults, no processor faults). The minimal run's canonical trace
/// names both takeovers as `RootFailover` events, and the minimal plan
/// replays bit-identically on every deterministic backend.
#[test]
fn shrinker_reduces_archived_root_failover() {
    let (plan, procs) = archived_plan("root-failover").expect("archived plan");
    let w = Workload::fib(10);
    let cfg = flat_cfg(procs, 2);
    let baseline = execute(Backend::Des, cfg.clone(), &w, &plan).0;
    assert!(
        baseline.completed && baseline.root_failovers >= 2,
        "archived plan must still fail over twice and complete: {baseline}"
    );

    let mut oracle = |p: &FaultPlan| {
        let r = execute(Backend::Des, cfg.clone(), &w, p).0;
        r.completed && r.root_failovers >= 2
    };
    let report = shrink(&plan, &mut oracle);
    let kept = report.plan.events.len() + report.plan.root_events.len();
    assert!(
        kept <= 3,
        "minimal plan still has {kept} faults:\n{}",
        plan_literal(&report.plan)
    );
    assert!(
        report.plan.events.is_empty(),
        "the essential core is root-replica crashes only:\n{}",
        plan_literal(&report.plan)
    );

    // The minimal run's trace records each takeover.
    let mut tcfg = cfg.clone();
    tcfg.trace = TraceMode::Full;
    let (_, events) = execute(Backend::Des, tcfg, &w, &report.plan);
    let failovers = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::RootFailover { .. }))
        .count();
    assert!(failovers >= 2, "trace recorded only {failovers} takeovers");

    // And the reproducer is archival-grade: bit-identical replay on
    // every deterministic backend.
    for backend in Backend::ALL {
        let rec = record(backend, cfg.clone(), &w, &report.plan);
        let rp = replay(&rec);
        assert!(
            rp.bit_identical(),
            "{backend}: minimal plan replay diverged: {:?}",
            rp.divergence
        );
    }
}

/// Golden determinism: on a fault-free plan the commutative semantic
/// checksum is byte-identical across the DES, the reactor, and the
/// parallel reactor at 1, 2 and 4 pumps.
#[test]
fn semantic_checksum_agrees_across_backends_and_pump_counts() {
    let w = Workload::quicksort(16, 9);
    let mut golden = None;
    for (backend, threads) in [
        (Backend::Des, 1),
        (Backend::Reactor, 1),
        (Backend::ParallelReactor, 1),
        (Backend::ParallelReactor, 2),
        (Backend::ParallelReactor, 4),
    ] {
        let mut cfg = flat_cfg(4, threads);
        cfg.trace = TraceMode::Checksum;
        let (report, _) = execute(backend, cfg, &w, &FaultPlan::none());
        assert!(report.completed, "{backend}@{threads} stalled");
        assert!(
            report.trace.events > 0,
            "{backend}@{threads} traced nothing"
        );
        let sum = report.trace.semantic;
        match golden {
            None => golden = Some(sum),
            Some(g) => assert_eq!(
                sum, g,
                "{backend}@{threads}: semantic checksum {sum:#018x} != golden {g:#018x}"
            ),
        }
    }
}

/// Golden determinism: on a *faulted* plan each backend's order-sensitive
/// stream checksum is identical run over run (per-backend replayability —
/// streams are not comparable across backends).
#[test]
fn stream_checksum_is_deterministic_per_backend() {
    let w = Workload::dcsum(0, 32);
    let plan = FaultPlan::crash_at(2, VirtualTime(2_000));
    for backend in Backend::ALL {
        let mut cfg = flat_cfg(4, 2);
        cfg.trace = TraceMode::Checksum;
        let a = execute(backend, cfg.clone(), &w, &plan).0;
        let b = execute(backend, cfg, &w, &plan).0;
        assert!(a.trace.events > 0, "{backend}: traced nothing");
        assert_eq!(
            a.trace.stream, b.trace.stream,
            "{backend}: stream checksum changed between identical runs"
        );
        assert_eq!(a.trace.semantic, b.trace.semantic);
        assert_eq!(a.trace.events, b.trace.events);
    }
}

/// The ring sink keeps the newest events and reports what it shed: a
/// small ring on a busy run drops events, the count lands in
/// `RunReport.trace.dropped`, and `events` still counts every emission.
#[test]
fn ring_mode_reports_dropped_events() {
    let w = Workload::fib(10);
    let mut cfg = flat_cfg(4, 1);
    cfg.trace = TraceMode::Ring(32);
    let (report, events) = execute(Backend::Des, cfg.clone(), &w, &FaultPlan::none());
    assert!(report.completed);
    assert_eq!(events.len(), 32, "ring retains exactly its capacity");
    assert!(
        report.trace.dropped > 0,
        "a 32-slot ring must shed events on fib(10)"
    );
    assert_eq!(
        report.trace.events,
        report.trace.dropped + events.len() as u64,
        "emitted = retained + dropped"
    );

    // The retained suffix matches the tail of a full recording.
    cfg.trace = TraceMode::Full;
    let (_, full) = execute(Backend::Des, cfg, &w, &FaultPlan::none());
    assert_eq!(&full[full.len() - 32..], events.as_slice());
}
