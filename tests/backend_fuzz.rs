//! Differential fault-plan fuzzing: the DES simulator, the cooperative
//! reactor and the multi-core parallel reactor are *independent*
//! schedulers for the same protocol engine (globally time-ordered event
//! queue vs wake-ordered cooperative turns vs BSP rounds over real OS
//! threads). The paper argues the recovery protocol's outcome does not
//! depend on how processors are scheduled — so for any fault plan the
//! backends must agree on the verdict (completed / stalled) and, when a
//! run completes, on the final wave value (which must equal the reference
//! evaluator's). The parallel leg additionally pins thread-count
//! independence: the same plan at 1, 2 and 4 pumps.
//!
//! Every proptest case derives a random plan — multi-fault crashes with
//! optionally protected processors, corrupt-after-crash mixes, whole-shard
//! massacres, whole-system death — and drives both backends with the same
//! seed and configuration. Fault instants are drawn from the middle of the
//! *shorter* backend's fault-free timeline, so each fault demonstrably
//! lands mid-run on both machines (faults can only push completion later,
//! never earlier). This is exactly the regime where the slow-ack /
//! fast-notice class of bugs (PRs 2 and 4) was hiding: a scheduler
//! ordering one backend can produce and the other cannot.

use proptest::prelude::*;
use splice::core::config::RecoveryMode;
use splice::gradient::Policy;
use splice::prelude::*;
use splice::sim::parallel::run_parallel_reactor;
use splice::sim::reactor::run_reactor;
use splice::sim::report::RunReport;
use splice::sim::{execute, Backend};
use splice::simnet::fault::FaultKind;
use splice::simnet::shrink::{plan_literal, shrink};
use splice::simnet::trace::{first_divergence, TraceMode};

/// splitmix64 — the deterministic stream all plan shapes are derived from.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Small, fast workloads — each fuzz case runs four full machine
/// executions (two baselines, two faulted runs).
fn workload(idx: u64) -> Workload {
    match idx % 3 {
        0 => Workload::fib(9),
        1 => Workload::dcsum(0, 24),
        _ => Workload::quicksort(12, 5),
    }
}

fn flat_cfg(n: u32, mode: RecoveryMode) -> MachineConfig {
    let mut c = MachineConfig::new(n);
    c.policy = Policy::RoundRobin;
    c.recovery.mode = mode;
    // Beacons rearm forever and keep a genuinely wedged run "busy";
    // disabling them keeps quiescence detection crisp on both backends.
    c.recovery.load_beacon_period = 0;
    // A wedge bug should fail fast, not grind through 200M events.
    c.max_events = 2_000_000;
    c
}

fn sharded_cfg(shards: u32, per_shard: u32, mode: RecoveryMode) -> MachineConfig {
    let mut c = MachineConfig::sharded(shards, per_shard, 200);
    c.policy = Policy::RoundRobin;
    c.recovery.mode = mode;
    c.recovery.load_beacon_period = 0;
    c.max_events = 2_000_000;
    c
}

/// The fault window: instants inside the middle of the shorter fault-free
/// timeline, so every fault lands while both machines are still running.
fn fault_window(cfg: &MachineConfig, w: &Workload) -> (u64, u64) {
    let sim = run_workload(cfg.clone(), w, &FaultPlan::none());
    assert!(sim.completed, "sim fault-free baseline stalled: {}", w.name);
    let rea = run_reactor(cfg.clone(), w, &FaultPlan::none());
    assert!(
        rea.completed,
        "reactor fault-free baseline stalled: {}",
        w.name
    );
    let horizon = sim.finish.ticks().min(rea.finish.ticks());
    (horizon / 6 + 1, 2 * horizon / 3 + 2)
}

fn verdict(r: &RunReport) -> (bool, bool) {
    (r.completed, r.stalled)
}

fn traced(cfg: &MachineConfig) -> MachineConfig {
    let mut c = cfg.clone();
    c.trace = TraceMode::Full;
    c
}

/// Parity failed: delta-debug the plan against the same disagreement
/// oracle, re-run both backends with full tracing on the minimal plan,
/// and panic with a paste-ready reproducer plus the first canonical trace
/// event on which the minimal runs disagree.
fn explain_divergence(
    cfg: &MachineConfig,
    w: &Workload,
    plan: &FaultPlan,
    left: Backend,
    right: Backend,
    detail: String,
) -> ! {
    let mut oracle = |p: &FaultPlan| {
        let l = execute(left, cfg.clone(), w, p).0;
        let r = execute(right, cfg.clone(), w, p).0;
        (l.completed, l.stalled, l.result) != (r.completed, r.stalled, r.result)
    };
    let report = shrink(plan, &mut oracle);
    let (_, le) = execute(left, traced(cfg), w, &report.plan);
    let (_, re) = execute(right, traced(cfg), w, &report.plan);
    let div = match first_divergence(&le, &re) {
        Some(d) => d.to_string(),
        None => "traces identical (outcome-only divergence)".to_string(),
    };
    panic!(
        "`{left}` vs `{right}` diverged on {} (policy={}): {detail}\n\
         plan shrunk {} -> {} faults in {} probes; minimal reproducer:\n{}\n{div}",
        w.name,
        cfg.recovery.policy.kind.label(),
        report.from_faults,
        report.plan.events.len(),
        report.probes,
        plan_literal(&report.plan),
    );
}

/// Drives `plan` through both backends and asserts scheduler-independent
/// outcomes: same verdict, same value, and any completed value equals the
/// reference evaluator's.
fn assert_backend_parity(cfg: &MachineConfig, w: &Workload, plan: &FaultPlan) {
    let sim = run_workload(cfg.clone(), w, plan);
    let rea = run_reactor(cfg.clone(), w, plan);
    assert!(
        sim.completed || sim.stalled,
        "sim tripped its event budget on {} under {plan:?}",
        w.name
    );
    assert!(
        rea.completed || rea.stalled,
        "reactor tripped its pump budget on {} under {plan:?}",
        w.name
    );
    if verdict(&sim) != verdict(&rea) || sim.result != rea.result {
        explain_divergence(
            cfg,
            w,
            plan,
            Backend::Des,
            Backend::Reactor,
            format!(
                "sim {:?}/{:?} vs reactor {:?}/{:?}",
                verdict(&sim),
                sim.result,
                verdict(&rea),
                rea.result
            ),
        );
    }
    if sim.completed {
        assert_eq!(
            sim.result,
            Some(w.reference_result().unwrap()),
            "both backends agreed on a wrong answer for {} under {plan:?}",
            w.name
        );
    }
}

/// Thread counts every parallel-leg case runs at: the inline single pump,
/// the smallest genuinely-parallel fleet, and a fleet wider than most of
/// the fuzzed machines (some pumps host a single engine).
const THREAD_COUNTS: [u32; 3] = [1, 2, 4];

/// The parallel leg's fault window: the minimum over the DES baseline and
/// the parallel baselines at every fuzzed thread count, so each fault
/// demonstrably lands mid-run on every machine shape.
fn parallel_fault_window(cfg: &MachineConfig, w: &Workload) -> (u64, u64) {
    let sim = run_workload(cfg.clone(), w, &FaultPlan::none());
    assert!(sim.completed, "sim fault-free baseline stalled: {}", w.name);
    let mut horizon = sim.finish.ticks();
    for threads in THREAD_COUNTS {
        let mut c = cfg.clone();
        c.threads = threads;
        let par = run_parallel_reactor(c, w, &FaultPlan::none());
        assert!(
            par.completed,
            "{threads}-thread fault-free baseline stalled: {}",
            w.name
        );
        horizon = horizon.min(par.finish.ticks());
    }
    (horizon / 6 + 1, 2 * horizon / 3 + 2)
}

/// Drives `plan` through the DES and the parallel reactor at every thread
/// count and asserts scheduler- *and* thread-count-independent outcomes.
fn assert_parallel_parity(cfg: &MachineConfig, w: &Workload, plan: &FaultPlan) {
    let sim = run_workload(cfg.clone(), w, plan);
    assert!(
        sim.completed || sim.stalled,
        "sim tripped its event budget on {} under {plan:?}",
        w.name
    );
    for threads in THREAD_COUNTS {
        let mut c = cfg.clone();
        c.threads = threads;
        let par = run_parallel_reactor(c.clone(), w, plan);
        assert!(
            par.completed || par.stalled,
            "{threads}-thread parallel reactor tripped its budget on {} under {plan:?}",
            w.name
        );
        if verdict(&sim) != verdict(&par) || sim.result != par.result {
            explain_divergence(
                &c,
                w,
                plan,
                Backend::Des,
                Backend::ParallelReactor,
                format!(
                    "sim {:?}/{:?} vs {threads}-thread parallel {:?}/{:?}",
                    verdict(&sim),
                    sim.result,
                    verdict(&par),
                    par.result
                ),
            );
        }
    }
    if sim.completed {
        assert_eq!(
            sim.result,
            Some(w.reference_result().unwrap()),
            "all backends agreed on a wrong answer for {} under {plan:?}",
            w.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flat machines: multi-fault crash plans (with and without protected
    /// processors, up to and including whole-system death) mixed with
    /// corrupt faults, including corrupt-after-crash on the same victim.
    #[test]
    fn sim_and_reactor_agree_on_flat_plans(seed in any::<u64>(), shape in 0u8..3) {
        let mut s = seed;
        let n = 3 + (mix(&mut s) % 5) as u32; // 3..=7 processors
        let mode = if mix(&mut s).is_multiple_of(4) {
            RecoveryMode::Rollback
        } else {
            RecoveryMode::Splice
        };
        let w = workload(mix(&mut s));
        let cfg = flat_cfg(n, mode);
        let (lo, hi) = fault_window(&cfg, &w);
        let plan = match shape {
            0 => {
                // k distinct random victims; sometimes processor 0 (the
                // launch rotor's first pick) is protected. k can reach n:
                // whole-system death, which must stall identically.
                let protect: &[u32] = if mix(&mut s).is_multiple_of(2) { &[0] } else { &[] };
                let k = (mix(&mut s) % u64::from(n + 1)) as usize;
                FaultPlan::random_crashes(
                    k,
                    n,
                    (VirtualTime(lo), VirtualTime(hi)),
                    protect,
                    mix(&mut s),
                )
            }
            1 => {
                // Every processor dies at one instant: verdict parity on
                // the stall side.
                let t = VirtualTime(lo + mix(&mut s) % (hi - lo).max(1));
                let mut p = FaultPlan::none();
                for v in 0..n {
                    p = p.and(v, t, FaultKind::Crash);
                }
                p
            }
            _ => {
                // Crash + corruption mix: one victim crashes then is
                // "corrupted" (must be a no-op on both backends), a second
                // live processor corrupts mid-run (inert without
                // replication), and maybe one more crash.
                let victim = (mix(&mut s) % u64::from(n)) as u32;
                let other = (victim + 1 + (mix(&mut s) % u64::from(n - 1)) as u32) % n;
                let t = lo + mix(&mut s) % (hi - lo).max(1);
                let mut p = FaultPlan::crash_at(victim, VirtualTime(t))
                    .and(victim, VirtualTime(t + 1), FaultKind::Corrupt)
                    .and(other, VirtualTime(lo), FaultKind::Corrupt);
                if mix(&mut s).is_multiple_of(2) && n > 2 {
                    let third = (other + 1) % n;
                    if third != victim {
                        p = p.and(third, VirtualTime(hi), FaultKind::Crash);
                    }
                }
                p
            }
        };
        assert_backend_parity(&cfg, &w, &plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Flat machines on the parallel reactor: the same multi-fault crash
    /// and corrupt-after-crash shapes as the sim/reactor leg, each plan
    /// run at 1, 2 and 4 pumps — every run must match the DES verdict and
    /// value, whatever partition the engines land in. (Fewer cases than
    /// the single-thread legs: each case is eight full machine runs.)
    #[test]
    fn sim_and_parallel_reactor_agree_on_flat_plans(seed in any::<u64>(), shape in 0u8..3) {
        let mut s = seed;
        let n = 3 + (mix(&mut s) % 5) as u32; // 3..=7 processors
        let mode = if mix(&mut s).is_multiple_of(4) {
            RecoveryMode::Rollback
        } else {
            RecoveryMode::Splice
        };
        let w = workload(mix(&mut s));
        let cfg = flat_cfg(n, mode);
        let (lo, hi) = parallel_fault_window(&cfg, &w);
        let plan = match shape {
            0 => {
                let protect: &[u32] = if mix(&mut s).is_multiple_of(2) { &[0] } else { &[] };
                let k = (mix(&mut s) % u64::from(n + 1)) as usize;
                FaultPlan::random_crashes(
                    k,
                    n,
                    (VirtualTime(lo), VirtualTime(hi)),
                    protect,
                    mix(&mut s),
                )
            }
            1 => {
                // Whole-system death: the all-dead stall must be detected
                // on every pump count.
                let t = VirtualTime(lo + mix(&mut s) % (hi - lo).max(1));
                let mut p = FaultPlan::none();
                for v in 0..n {
                    p = p.and(v, t, FaultKind::Crash);
                }
                p
            }
            _ => {
                // Crash + corruption mix, corrupt-after-crash included.
                let victim = (mix(&mut s) % u64::from(n)) as u32;
                let other = (victim + 1 + (mix(&mut s) % u64::from(n - 1)) as u32) % n;
                let t = lo + mix(&mut s) % (hi - lo).max(1);
                FaultPlan::crash_at(victim, VirtualTime(t))
                    .and(victim, VirtualTime(t + 1), FaultKind::Corrupt)
                    .and(other, VirtualTime(lo), FaultKind::Corrupt)
            }
        };
        assert_parallel_parity(&cfg, &w, &plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded machines on the parallel reactor: whole-shard massacres and
    /// cross-shard multi-fault plans with the full decorator stack
    /// (`ShardRouter` over `BatchingSubstrate` over the pump substrate),
    /// each at 1, 2 and 4 pumps. Shard boundaries and pump boundaries
    /// deliberately do not coincide.
    #[test]
    fn sim_and_parallel_reactor_agree_on_sharded_plans(seed in any::<u64>(), whole_shard in any::<bool>()) {
        let mut s = seed;
        let shards = 2 + (mix(&mut s) % 2) as u32; // 2..=3
        let per_shard = 2 + (mix(&mut s) % 2) as u32; // 2..=3
        let n = shards * per_shard;
        let w = workload(mix(&mut s));
        let cfg = sharded_cfg(shards, per_shard, RecoveryMode::Splice);
        let (lo, hi) = parallel_fault_window(&cfg, &w);
        let t = VirtualTime(lo + mix(&mut s) % (hi - lo).max(1));
        let plan = if whole_shard {
            let shard = (mix(&mut s) % u64::from(shards)) as u32;
            FaultPlan::crash_shard(shard, per_shard, t)
        } else {
            FaultPlan::random_crashes(
                1 + (mix(&mut s) % u64::from(n - 1)) as usize,
                n,
                (VirtualTime(lo), VirtualTime(hi)),
                &[],
                mix(&mut s),
            )
        };
        assert_parallel_parity(&cfg, &w, &plan);
    }
}

/// A sharded configuration the multi-process backend can faithfully
/// mirror: round-robin placement (cross-shard traffic without load
/// beacons), beacons off, and an ack timeout generous enough that
/// wall-clock scheduling noise on the process side cannot trigger
/// spurious reissues (which would add duplicate Complete events to the
/// semantic checksum).
#[cfg(unix)]
fn process_cfg(shards: u32, per_shard: u32) -> MachineConfig {
    let mut c = sharded_cfg(shards, per_shard, RecoveryMode::Splice);
    c.recovery.ack_timeout = 40_000;
    c.trace = TraceMode::Checksum;
    c
}

#[cfg(unix)]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// DES vs the *multi-process* machine, fault-free: the same engines
    /// over a deterministic event queue and over real OS processes racing
    /// on Unix sockets must agree on the verdict, the value, and the
    /// commutative semantic trace checksum — the multiset of completed
    /// (stamp, value) pairs is schedule-invariant. (Few cases: each one
    /// forks a fleet of worker processes.)
    #[test]
    fn sim_and_process_agree_fault_free(seed in any::<u64>()) {
        let mut s = seed;
        let shards = 2 + (mix(&mut s) % 2) as u32; // 2..=3
        let per_shard = 1 + (mix(&mut s) % 2) as u32; // 1..=2
        let w = workload(mix(&mut s));
        let cfg = process_cfg(shards, per_shard);
        let (sim, _) = execute(Backend::Des, cfg.clone(), &w, &FaultPlan::none());
        let (proc_rep, events) = execute(Backend::Process, cfg, &w, &FaultPlan::none());
        prop_assert!(events.is_empty(), "the process backend has no replayable stream");
        prop_assert!(sim.completed, "DES baseline stalled on {}", w.name);
        prop_assert!(proc_rep.completed, "process run stalled on {}", w.name);
        prop_assert_eq!(&proc_rep.result, &sim.result);
        prop_assert_eq!(proc_rep.result, Some(w.reference_result().unwrap()));
        prop_assert!(proc_rep.trace.events > 0, "process run traced nothing");
        prop_assert_eq!(
            proc_rep.trace.semantic, sim.trace.semantic,
            "semantic checksum diverged on {}", w.name
        );
    }
}

#[cfg(unix)]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// DES vs the multi-process machine under whole-shard crash plans: the
    /// DES models the crash, the process backend SIGKILLs a live worker.
    /// One shard always survives, so both must complete with the reference
    /// value whether the (wall-clock-mapped) kill lands mid-run or after
    /// the answer; the DES crash demonstrably lands mid-run.
    #[test]
    fn sim_and_process_agree_on_shard_kills(seed in any::<u64>()) {
        let mut s = seed;
        let shards = 2 + (mix(&mut s) % 2) as u32; // 2..=3
        let per_shard = 1 + (mix(&mut s) % 2) as u32; // 1..=2
        let w = workload(mix(&mut s));
        let cfg = process_cfg(shards, per_shard);
        let (lo, hi) = fault_window(&cfg, &w);
        let t = VirtualTime(lo + mix(&mut s) % (hi - lo).max(1));
        let victim = (mix(&mut s) % u64::from(shards)) as u32;
        let plan = FaultPlan::crash_shard(victim, per_shard, t);
        let (sim, _) = execute(Backend::Des, cfg.clone(), &w, &plan);
        let (proc_rep, _) = execute(Backend::Process, cfg, &w, &plan);
        prop_assert!(sim.completed, "DES did not recover from a shard crash on {}", w.name);
        prop_assert!(proc_rep.completed, "process machine did not recover from SIGKILL on {}", w.name);
        prop_assert_eq!(&proc_rep.result, &sim.result);
        prop_assert_eq!(proc_rep.result, Some(w.reference_result().unwrap()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Root-replica crash plans: the super-root itself is a crash-able
    /// quorum role. Rank 0 leads at launch; crashing ranks `0..k` (k <
    /// N) deposes the acting primary at least once, and a successor must
    /// take over from the replicated checkpoint and reissue the root
    /// wave — so the run still completes with the reference value, on
    /// both backends, optionally with an ordinary processor crash
    /// landing alongside.
    #[test]
    fn sim_and_reactor_agree_on_root_replica_crashes(seed in any::<u64>()) {
        let mut s = seed;
        let n = 3 + (mix(&mut s) % 4) as u32; // 3..=6 processors
        let replicas = 2 + (mix(&mut s) % 3) as u32; // 2..=4 root replicas
        let w = workload(mix(&mut s));
        let mut cfg = flat_cfg(n, RecoveryMode::Splice);
        cfg.recovery.root_replicas = replicas;
        let (lo, hi) = fault_window(&cfg, &w);
        let k = 1 + (mix(&mut s) % u64::from(replicas - 1)) as u32; // 1..=N-1 deaths
        let mut plan = FaultPlan::none();
        for r in 0..k {
            let t = lo + mix(&mut s) % (hi - lo).max(1);
            plan = plan.crash_root_replica(r, VirtualTime(t));
        }
        if mix(&mut s).is_multiple_of(2) {
            let v = (mix(&mut s) % u64::from(n)) as u32;
            let t = lo + mix(&mut s) % (hi - lo).max(1);
            plan = plan.and(v, VirtualTime(t), FaultKind::Crash);
        }
        let sim = run_workload(cfg.clone(), &w, &plan);
        prop_assert!(
            sim.completed,
            "DES stalled under root-replica crashes on {}: {plan:?}",
            w.name
        );
        prop_assert!(
            sim.root_failovers >= 1,
            "no failover recorded on {} under {plan:?}",
            w.name
        );
        assert_backend_parity(&cfg, &w, &plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The root-replica crash leg on the parallel reactor: the same plans
    /// at 1, 2 and 4 pumps must match the DES verdict and value — the
    /// failover replays identically whatever partition the engines (and
    /// the coordinator's barrier rounds) land in.
    #[test]
    fn sim_and_parallel_reactor_agree_on_root_replica_crashes(seed in any::<u64>()) {
        let mut s = seed;
        let n = 3 + (mix(&mut s) % 4) as u32;
        let replicas = 2 + (mix(&mut s) % 3) as u32;
        let w = workload(mix(&mut s));
        let mut cfg = flat_cfg(n, RecoveryMode::Splice);
        cfg.recovery.root_replicas = replicas;
        let (lo, hi) = parallel_fault_window(&cfg, &w);
        let k = 1 + (mix(&mut s) % u64::from(replicas - 1)) as u32;
        let mut plan = FaultPlan::none();
        for r in 0..k {
            let t = lo + mix(&mut s) % (hi - lo).max(1);
            plan = plan.crash_root_replica(r, VirtualTime(t));
        }
        assert_parallel_parity(&cfg, &w, &plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Killing *every* root replica leaves no successor: inputs to the
    /// super-root role are discarded, the result can never be assembled,
    /// and each backend must quiesce as stalled — a verdict, not a hang
    /// (nor a grind to the event budget).
    #[test]
    fn all_root_replicas_dead_stalls_every_backend(seed in any::<u64>()) {
        let mut s = seed;
        let n = 3 + (mix(&mut s) % 3) as u32;
        let replicas = 1 + (mix(&mut s) % 3) as u32; // 1..=3
        let w = workload(mix(&mut s));
        let mut cfg = flat_cfg(n, RecoveryMode::Splice);
        cfg.recovery.root_replicas = replicas;
        let (lo, hi) = fault_window(&cfg, &w);
        let mut plan = FaultPlan::none();
        for r in 0..replicas {
            let t = lo + mix(&mut s) % (hi - lo).max(1);
            plan = plan.crash_root_replica(r, VirtualTime(t));
        }
        let sim = run_workload(cfg.clone(), &w, &plan);
        prop_assert!(
            !sim.completed && sim.stalled,
            "DES: quorum death must stall, got completed={} stalled={} on {}",
            sim.completed, sim.stalled, w.name
        );
        let rea = run_reactor(cfg.clone(), &w, &plan);
        prop_assert!(
            !rea.completed && rea.stalled,
            "reactor: quorum death must stall, got completed={} stalled={} on {}",
            rea.completed, rea.stalled, w.name
        );
        for threads in THREAD_COUNTS {
            let mut c = cfg.clone();
            c.threads = threads;
            let par = run_parallel_reactor(c, &w, &plan);
            prop_assert!(
                !par.completed && par.stalled,
                "{threads}-thread parallel: quorum death must stall, got completed={} stalled={} on {}",
                par.completed, par.stalled, w.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The recovery-policy axis: one random multi-fault plan (multi-crash
    /// shapes up to whole-system death, optionally protected processor 0,
    /// rollback and splice modes), run under all *three* recovery
    /// policies on both the DES and the reactor. Two properties at once:
    /// within each policy the backends must agree (scheduler
    /// independence, policy included in any shrunk reproducer), and
    /// *across* policies the verdict and value must be identical — the
    /// policies trade recovery cost and timing, never the outcome.
    #[test]
    fn every_policy_agrees_on_verdict_and_value(seed in any::<u64>()) {
        use splice::core::policy::{PolicyKind, PolicySpec};
        let mut s = seed;
        let n = 3 + (mix(&mut s) % 4) as u32; // 3..=6 processors
        let mode = if mix(&mut s).is_multiple_of(4) {
            RecoveryMode::Rollback
        } else {
            RecoveryMode::Splice
        };
        let w = workload(mix(&mut s));
        let base = flat_cfg(n, mode);
        let (lo, hi) = fault_window(&base, &w);
        let protect: &[u32] = if mix(&mut s).is_multiple_of(2) { &[0] } else { &[] };
        let k = (mix(&mut s) % u64::from(n + 1)) as usize;
        let plan = FaultPlan::random_crashes(
            k,
            n,
            (VirtualTime(lo), VirtualTime(hi)),
            protect,
            mix(&mut s),
        );
        let mut outcomes: Vec<(PolicyKind, (bool, bool), Option<Value>)> = Vec::new();
        for kind in PolicyKind::ALL {
            let mut cfg = base.clone();
            cfg.recovery.policy = PolicySpec::of(kind);
            assert_backend_parity(&cfg, &w, &plan);
            let r = run_workload(cfg, &w, &plan);
            outcomes.push((kind, verdict(&r), r.result));
        }
        let (k0, v0, r0) = outcomes[0].clone();
        for (kind, v, res) in &outcomes[1..] {
            prop_assert_eq!(
                (v, res), (&v0, &r0),
                "policy {} disagrees with {} on {} under {:?}",
                kind, k0, &w.name, &plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharded machines behind the inter-shard router: whole-shard
    /// massacres and cross-shard multi-fault plans — the decorator stack
    /// (`ShardRouter` over `BatchingSubstrate`) composes identically over
    /// the DES and the reactor, router surcharges included.
    #[test]
    fn sim_and_reactor_agree_on_sharded_plans(seed in any::<u64>(), whole_shard in any::<bool>()) {
        let mut s = seed;
        let shards = 2 + (mix(&mut s) % 2) as u32; // 2..=3
        let per_shard = 2 + (mix(&mut s) % 2) as u32; // 2..=3
        let n = shards * per_shard;
        let w = workload(mix(&mut s));
        let cfg = sharded_cfg(shards, per_shard, RecoveryMode::Splice);
        let (lo, hi) = fault_window(&cfg, &w);
        let t = VirtualTime(lo + mix(&mut s) % (hi - lo).max(1));
        let plan = if whole_shard {
            // One whole shard dies — possibly shard 0, which hosts the
            // root at launch.
            let shard = (mix(&mut s) % u64::from(shards)) as u32;
            FaultPlan::crash_shard(shard, per_shard, t)
        } else {
            FaultPlan::random_crashes(
                1 + (mix(&mut s) % u64::from(n - 1)) as usize,
                n,
                (VirtualTime(lo), VirtualTime(hi)),
                &[],
                mix(&mut s),
            )
        };
        assert_backend_parity(&cfg, &w, &plan);
    }
}
