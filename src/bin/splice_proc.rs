//! `splice-proc` — run a workload on the multi-process machine.
//!
//! Launches one OS process per shard (the `splice-proc-worker` binary),
//! wires them together over Unix domain sockets, optionally executes a
//! process-level fault plan *for real* — SIGKILL, one-directional socket
//! partition, frame delay, frame corruption — and prints the assembled
//! run report, including the transport counters
//! (frames sent/resent, reconnects, decode errors).
//!
//! ```text
//! splice-proc --shards 4 --per-shard 2 --workload fib:16 \
//!             --plan 'kill:1@40000' --recovery splice
//! ```
//!
//! Plan events are comma-separated:
//!
//! * `kill:SHARD@AT`                        — SIGKILL the shard's worker;
//! * `partition:SHARD>PEER@AT+FOR`          — gate SHARD→PEER frames;
//! * `partin:SHARD@AT+FOR`                  — SHARD goes deaf: drops its
//!   listener and every inbound connection (outbound links keep working);
//! * `delay:SHARD>PEER@AT+FOR:EXTRA`        — add EXTRA units to them;
//! * `garble:SHARD>PEER@AT`                 — corrupt the next frame;
//! * `noise:SHARD>PEER@AT+FOR`              — flip bytes in ~half of
//!   SHARD→PEER frames for the window (checksums catch and recover).
//!
//! Times are in driver units (`--unit-us` wall-clock microseconds each),
//! measured from workload launch.

use splice_core::config::RecoveryMode;
use splice_sim::proc::{parse_workload, run_process, ProcConfig};
use splice_simnet::fault::ProcessFaultPlan;
use splice_simnet::time::VirtualTime;
use splice_simnet::trace::TraceMode;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  splice-proc [--shards N] [--per-shard M] [--workload W] [--plan P]
              [--recovery none|rollback|splice] [--seed S] [--unit-us U]
              [--timeout-secs T] [--no-broadcast] [--trace]

  W = fib:N | dcsum:LO:HI | binomial:N:K | quicksort:LEN:SEED
  P = none | kill:SHARD@AT | partition:SHARD>PEER@AT+FOR | partin:SHARD@AT+FOR
           | delay:SHARD>PEER@AT+FOR:EXTRA | garble:SHARD>PEER@AT
           | noise:SHARD>PEER@AT+FOR  [,...]"
    );
    ExitCode::from(2)
}

/// `fib:16` → the canonical `fib(16)` spec the workers parse.
fn workload_spec(w: &str) -> Option<String> {
    if w.contains('(') {
        return Some(w.to_string());
    }
    let mut parts = w.split(':');
    let name = parts.next()?;
    let args: Vec<&str> = parts.collect();
    match (name, args.as_slice()) {
        ("fib", [n]) => Some(format!("fib({n})")),
        ("dcsum", [lo, hi]) => Some(format!("dcsum({lo},{hi})")),
        ("binomial", [n, k]) => Some(format!("binomial({n},{k})")),
        ("quicksort", [len, seed]) => Some(format!("quicksort(n={len},seed={seed})")),
        _ => None,
    }
}

/// `SHARD>PEER@AT[+FOR]` → (shard, peer, at, for_units).
fn parse_link_event(s: &str) -> Option<(u32, u32, u64, u64)> {
    let (link, when) = s.split_once('@')?;
    let (shard, peer) = link.split_once('>')?;
    let (at, for_units) = match when.split_once('+') {
        Some((a, f)) => (a.parse().ok()?, f.parse().ok()?),
        None => (when.parse().ok()?, 0),
    };
    Some((
        shard.trim().parse().ok()?,
        peer.trim().parse().ok()?,
        at,
        for_units,
    ))
}

fn parse_plan(p: &str) -> Option<ProcessFaultPlan> {
    let mut plan = ProcessFaultPlan::none();
    if p == "none" || p.is_empty() {
        return Some(plan);
    }
    for ev in p.split(',') {
        let (kind, rest) = ev.trim().split_once(':')?;
        match kind {
            "kill" => {
                let (shard, at) = rest.split_once('@')?;
                plan = plan.kill_shard(shard.trim().parse().ok()?, VirtualTime(at.parse().ok()?));
            }
            "partition" => {
                let (shard, peer, at, for_units) = parse_link_event(rest)?;
                plan = plan.partition_out(shard, peer, VirtualTime(at), for_units);
            }
            "delay" => {
                let (spec, extra) = rest.rsplit_once(':')?;
                let (shard, peer, at, for_units) = parse_link_event(spec)?;
                plan = plan.delay_out(shard, peer, VirtualTime(at), extra.parse().ok()?, for_units);
            }
            "partin" => {
                let (shard, when) = rest.split_once('@')?;
                let (at, for_units) = when.split_once('+')?;
                plan = plan.partition_in(
                    shard.trim().parse().ok()?,
                    VirtualTime(at.parse().ok()?),
                    for_units.parse().ok()?,
                );
            }
            "garble" => {
                let (shard, peer, at, _) = parse_link_event(rest)?;
                plan = plan.garble_next(shard, peer, VirtualTime(at));
            }
            "noise" => {
                let (shard, peer, at, for_units) = parse_link_event(rest)?;
                plan = plan.noise_out(shard, peer, VirtualTime(at), for_units);
            }
            _ => return None,
        }
    }
    Some(plan)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut shards: u32 = 4;
    let mut per_shard: u32 = 2;
    let mut workload_arg = "fib:16".to_string();
    let mut plan_arg = "none".to_string();
    let mut recovery = RecoveryMode::Splice;
    let mut seed: u64 = 1;
    let mut unit_us: u64 = 25;
    let mut timeout_secs: u64 = 30;
    let mut broadcast = true;
    let mut trace = TraceMode::Off;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--no-broadcast" => broadcast = false,
            "--trace" => trace = TraceMode::Checksum,
            _ => {
                let Some(v) = it.next() else {
                    return usage();
                };
                let ok = match flag.as_str() {
                    "--shards" => v.parse().map(|x| shards = x).is_ok(),
                    "--per-shard" => v.parse().map(|x| per_shard = x).is_ok(),
                    "--workload" => {
                        workload_arg = v.clone();
                        true
                    }
                    "--plan" => {
                        plan_arg = v.clone();
                        true
                    }
                    "--recovery" => match v.as_str() {
                        "none" => {
                            recovery = RecoveryMode::None;
                            true
                        }
                        "rollback" => {
                            recovery = RecoveryMode::Rollback;
                            true
                        }
                        "splice" => {
                            recovery = RecoveryMode::Splice;
                            true
                        }
                        _ => false,
                    },
                    "--seed" => v.parse().map(|x| seed = x).is_ok(),
                    "--unit-us" => v.parse().map(|x| unit_us = x).is_ok(),
                    "--timeout-secs" => v.parse().map(|x| timeout_secs = x).is_ok(),
                    _ => false,
                };
                if !ok {
                    return usage();
                }
            }
        }
    }
    let Some(spec) = workload_spec(&workload_arg) else {
        return usage();
    };
    let Some(workload) = parse_workload(&spec) else {
        return usage();
    };
    let Some(plan) = parse_plan(&plan_arg) else {
        return usage();
    };
    let mut cfg = ProcConfig::new(shards.max(1), per_shard.max(1));
    cfg.recovery.mode = recovery;
    cfg.detector_broadcast = broadcast;
    cfg.seed = seed;
    cfg.time_unit = Duration::from_micros(unit_us.max(1));
    cfg.run_timeout = Duration::from_secs(timeout_secs.max(1));
    cfg.trace = trace;
    eprintln!(
        "splice-proc: {} on {} shards x {} procs, plan {} ({} events)",
        spec,
        cfg.shards,
        cfg.per_shard,
        plan_arg,
        plan.events.len()
    );
    match run_process(&cfg, &workload, &plan) {
        Ok(report) => {
            println!("{report}");
            println!(
                "frames_sent={} frames_resent={} reconnects={} decode_errors={}",
                report.frames_sent, report.frames_resent, report.reconnects, report.decode_errors
            );
            if report.trace.events > 0 || report.trace.semantic != 0 {
                println!(
                    "trace: events={} semantic={:#018x}",
                    report.trace.events, report.trace.semantic
                );
            }
            match (&report.result, workload.reference_result()) {
                (Some(got), Ok(want)) if *got == want => {
                    println!("result OK: {got:?}");
                    ExitCode::SUCCESS
                }
                (Some(got), Ok(want)) => {
                    println!("result MISMATCH: got {got:?}, want {want:?}");
                    ExitCode::FAILURE
                }
                (Some(got), Err(_)) => {
                    println!("result: {got:?}");
                    ExitCode::SUCCESS
                }
                (None, _) => {
                    println!("no result (stalled={})", report.stalled);
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("splice-proc: {e}");
            ExitCode::FAILURE
        }
    }
}
