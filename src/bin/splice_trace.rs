//! `splice-trace` — canonical-trace tooling on the command line.
//!
//! Four subcommands over the deterministic backends:
//!
//! * `record`  — run a `(backend, workload, plan)` with full tracing and
//!   write the canonical event stream plus the report fingerprint to a
//!   file;
//! * `replay`  — re-execute a recording's inputs and verify the trace and
//!   report reproduce, printing the first divergent event otherwise;
//! * `diff`    — run the same `(workload, plan)` on two backends and print
//!   where their canonical traces first disagree (and whether their
//!   verdict/value/semantic checksums agree);
//! * `shrink`  — delta-debug a failing fault plan (an inline spec or an
//!   archived reproducer by name) down to a minimal plan that still fails,
//!   printing a ready-to-paste regression test.
//!
//! Specs are tiny and positional-free: workloads are `name:arg:arg`
//! (`fib:12`, `dcsum:0:48`, `quicksort:24:7`, `nqueens:5`, `tak:8:4:2`,
//! `mapreduce:0:16:6`), plans are comma-separated `victim@time:kind`
//! events (`2@3000:crash,1@4000:corrupt`) or `none`. Configurations use
//! the deterministic test shape: round-robin placement, load beacons off.

use splice_applicative::Workload;
use splice_sim::replay::{archived_plan, execute, record, Backend, Recording};
use splice_sim::MachineConfig;
use splice_simnet::fault::{FaultKind, FaultPlan};
use splice_simnet::shrink::{plan_literal, regression_test_literal, shrink};
use splice_simnet::time::VirtualTime;
use splice_simnet::trace::{first_divergence, TraceEvent, TraceKind, TraceMode};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  splice-trace record --backend B --workload W [--procs N] [--threads T] \\
                      [--seed S] [--batch U] --plan P --out FILE
  splice-trace replay FILE
  splice-trace diff   --left B --right B --workload W [--procs N] \\
                      [--threads T] [--seed S] [--batch U] --plan P
  splice-trace shrink (--plan P | --archived NAME) --workload W \\
                      [--backend B] [--procs N] [--threads T]

  B = des | reactor | parallel
  W = fib:N | dcsum:LO:HI | quicksort:LEN:SEED | nqueens:N | tak:X:Y:Z | mapreduce:LO:HI:WORK
  P = victim@time:crash|corrupt[,...] | none"
    );
    ExitCode::from(2)
}

/// One parsed `--flag value` map (every flag takes exactly one value).
struct Args {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Option<Args> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(flag) = a.strip_prefix("--") {
                let v = it.next()?;
                pairs.push((flag.to_string(), v.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Some(Args { pairs, positional })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn num(&self, flag: &str, default: u64) -> Option<u64> {
        match self.get(flag) {
            None => Some(default),
            Some(v) => v.parse().ok(),
        }
    }
}

fn parse_workload(spec: &str) -> Option<Workload> {
    let mut parts = spec.split(':');
    let name = parts.next()?;
    let args: Vec<i64> = parts.map(|p| p.parse().ok()).collect::<Option<_>>()?;
    match (name, args.as_slice()) {
        ("fib", [n]) => Some(Workload::fib(*n)),
        ("dcsum", [lo, hi]) => Some(Workload::dcsum(*lo, *hi)),
        ("quicksort", [len, seed]) => Some(Workload::quicksort(*len as usize, *seed as u64)),
        ("nqueens", [n]) => Some(Workload::nqueens(*n)),
        ("tak", [x, y, z]) => Some(Workload::tak(*x, *y, *z)),
        ("mapreduce", [lo, hi, work]) => Some(Workload::mapreduce(*lo, *hi, *work)),
        _ => None,
    }
}

fn parse_plan(spec: &str) -> Option<FaultPlan> {
    let mut plan = FaultPlan::none();
    if spec == "none" {
        return Some(plan);
    }
    for ev in spec.split(',') {
        let (victim, rest) = ev.split_once('@')?;
        let (at, kind) = rest.split_once(':')?;
        let kind = match kind {
            "crash" => FaultKind::Crash,
            "corrupt" => FaultKind::Corrupt,
            _ => return None,
        };
        plan = plan.and(victim.parse().ok()?, VirtualTime(at.parse().ok()?), kind);
    }
    Some(plan)
}

fn plan_spec(plan: &FaultPlan) -> String {
    if plan.events.is_empty() {
        return "none".to_string();
    }
    plan.events
        .iter()
        .map(|e| {
            let kind = match e.kind {
                FaultKind::Crash => "crash",
                FaultKind::Corrupt => "corrupt",
            };
            format!("{}@{}:{kind}", e.victim, e.at.ticks())
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// The deterministic test configuration every subcommand uses: round-robin
/// placement, beacons off — no stochastic placer, no beacon traffic.
fn config(args: &Args) -> Option<MachineConfig> {
    let mut c = MachineConfig::new(args.num("procs", 4)? as u32);
    c.policy = splice_gradient::Policy::RoundRobin;
    c.recovery.load_beacon_period = 0;
    c.threads = args.num("threads", 2)? as u32;
    c.seed = args.num("seed", 1)?;
    c.batch_window = args.num("batch", 0)?;
    Some(c)
}

/// Stable one-line encoding of an event (round-trips through
/// `parse_event`; the human-readable `Display` form is for diagnostics).
fn encode_event(ev: &TraceEvent) -> String {
    let (tag, fields) = match ev.kind {
        TraceKind::Deliver { to, kind, digest } => {
            ("d", vec![u64::from(to), u64::from(kind), digest])
        }
        TraceKind::Bounce { sender, dead, kind } => (
            "b",
            vec![u64::from(sender), u64::from(dead), u64::from(kind)],
        ),
        TraceKind::TimerFire { owner, digest } => ("t", vec![u64::from(owner), digest]),
        TraceKind::Fault {
            victim,
            kind,
            applied,
        } => (
            "f",
            vec![u64::from(victim), u64::from(kind), u64::from(applied)],
        ),
        TraceKind::Wave { owner, work } => ("w", vec![u64::from(owner), work]),
        TraceKind::Complete { owner, digest } => ("c", vec![u64::from(owner), digest]),
        TraceKind::RootFailover { rank } => ("r", vec![u64::from(rank)]),
        TraceKind::Policy { kind, tier, every } => (
            "p",
            vec![u64::from(kind), u64::from(tier), u64::from(every)],
        ),
    };
    let mut line = format!("{} {} {tag}", ev.at.ticks(), ev.seq);
    for f in fields {
        line.push(' ');
        line.push_str(&f.to_string());
    }
    line
}

fn parse_event(line: &str) -> Option<TraceEvent> {
    let mut it = line.split(' ');
    let at = VirtualTime(it.next()?.parse().ok()?);
    let seq = it.next()?.parse().ok()?;
    let tag = it.next()?;
    let fields: Vec<u64> = it.map(|f| f.parse().ok()).collect::<Option<_>>()?;
    let kind = match (tag, fields.as_slice()) {
        ("d", [to, kind, digest]) => TraceKind::Deliver {
            to: *to as u32,
            kind: *kind as u8,
            digest: *digest,
        },
        ("b", [sender, dead, kind]) => TraceKind::Bounce {
            sender: *sender as u32,
            dead: *dead as u32,
            kind: *kind as u8,
        },
        ("t", [owner, digest]) => TraceKind::TimerFire {
            owner: *owner as u32,
            digest: *digest,
        },
        ("f", [victim, kind, applied]) => TraceKind::Fault {
            victim: *victim as u32,
            kind: *kind as u8,
            applied: *applied != 0,
        },
        ("w", [owner, work]) => TraceKind::Wave {
            owner: *owner as u32,
            work: *work,
        },
        ("c", [owner, digest]) => TraceKind::Complete {
            owner: *owner as u32,
            digest: *digest,
        },
        ("r", [rank]) => TraceKind::RootFailover { rank: *rank as u32 },
        ("p", [kind, tier, every]) => TraceKind::Policy {
            kind: *kind as u8,
            tier: *tier as u8,
            every: *every as u32,
        },
        _ => return None,
    };
    Some(TraceEvent { at, seq, kind })
}

fn encode_recording(rec: &Recording, workload_spec: &str) -> String {
    let s = rec.report.trace;
    let mut out = String::new();
    out.push_str("splice-trace v1\n");
    out.push_str(&format!("backend {}\n", rec.backend));
    out.push_str(&format!("workload {workload_spec}\n"));
    out.push_str(&format!("procs {}\n", rec.cfg.topology.len()));
    out.push_str(&format!("threads {}\n", rec.cfg.threads));
    out.push_str(&format!("seed {}\n", rec.cfg.seed));
    out.push_str(&format!("batch {}\n", rec.cfg.batch_window));
    out.push_str(&format!("plan {}\n", plan_spec(&rec.plan)));
    out.push_str(&format!(
        "report completed={} stalled={} finish={} events={} delivered={}\n",
        rec.report.completed,
        rec.report.stalled,
        rec.report.finish.ticks(),
        rec.report.events,
        rec.report.delivered,
    ));
    out.push_str(&format!(
        "checksums stream={:#018x} semantic={:#018x} events={} dropped={}\n",
        s.stream, s.semantic, s.events, s.dropped
    ));
    for ev in &rec.events {
        out.push_str(&encode_event(ev));
        out.push('\n');
    }
    out
}

fn field<'a>(lines: &'a [&str], key: &str) -> Option<&'a str> {
    lines
        .iter()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix(' ')))
}

fn cmd_record(args: &Args) -> Option<ExitCode> {
    let backend = Backend::parse(args.get("backend")?)?;
    let spec = args.get("workload")?;
    let workload = parse_workload(spec)?;
    let plan = parse_plan(args.get("plan").unwrap_or("none"))?;
    let cfg = config(args)?;
    let out_path = args.get("out")?;
    let rec = record(backend, cfg, &workload, &plan);
    std::fs::write(out_path, encode_recording(&rec, spec)).ok()?;
    println!(
        "recorded {} events from {} on `{}` (completed={}, finish={})",
        rec.events.len(),
        spec,
        backend,
        rec.report.completed,
        rec.report.finish
    );
    Some(ExitCode::SUCCESS)
}

fn cmd_replay(args: &Args) -> Option<ExitCode> {
    let path = args.positional.first()?;
    let text = std::fs::read_to_string(path).ok()?;
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&"splice-trace v1") {
        eprintln!("{path}: not a splice-trace recording");
        return Some(ExitCode::FAILURE);
    }
    let backend = Backend::parse(field(&lines, "backend")?)?;
    let workload = parse_workload(field(&lines, "workload")?)?;
    let plan = parse_plan(field(&lines, "plan")?)?;
    let mut cfg = MachineConfig::new(field(&lines, "procs")?.parse().ok()?);
    cfg.policy = splice_gradient::Policy::RoundRobin;
    cfg.recovery.load_beacon_period = 0;
    cfg.threads = field(&lines, "threads")?.parse().ok()?;
    cfg.seed = field(&lines, "seed")?.parse().ok()?;
    cfg.batch_window = field(&lines, "batch")?.parse().ok()?;
    cfg.trace = TraceMode::Full;
    let recorded: Vec<TraceEvent> = lines
        .iter()
        .skip_while(|l| !l.starts_with("checksums "))
        .skip(1)
        .map(|l| parse_event(l))
        .collect::<Option<_>>()?;
    let (fresh_report, fresh_events) = execute(backend, cfg, &workload, &plan);
    let report_line = format!(
        "report completed={} stalled={} finish={} events={} delivered={}",
        fresh_report.completed,
        fresh_report.stalled,
        fresh_report.finish.ticks(),
        fresh_report.events,
        fresh_report.delivered,
    );
    let report_matches = lines.contains(&report_line.as_str());
    match first_divergence(&recorded, &fresh_events) {
        None if report_matches => {
            println!(
                "replay OK: {} events reproduced bit-identically on `{backend}`",
                recorded.len()
            );
            Some(ExitCode::SUCCESS)
        }
        None => {
            println!("replay FAILED: trace identical but report changed:\n  fresh: {report_line}");
            Some(ExitCode::FAILURE)
        }
        Some(d) => {
            println!("replay FAILED:\n{d}");
            Some(ExitCode::FAILURE)
        }
    }
}

fn cmd_diff(args: &Args) -> Option<ExitCode> {
    let left = Backend::parse(args.get("left")?)?;
    let right = Backend::parse(args.get("right")?)?;
    let workload = parse_workload(args.get("workload")?)?;
    let plan = parse_plan(args.get("plan").unwrap_or("none"))?;
    let mut cfg = config(args)?;
    cfg.trace = TraceMode::Full;
    let (lr, le) = execute(left, cfg.clone(), &workload, &plan);
    let (rr, re) = execute(right, cfg, &workload, &plan);
    println!(
        "`{left}`:  completed={} result={:?} semantic={:#018x} ({} events)",
        lr.completed,
        lr.result,
        lr.trace.semantic,
        le.len()
    );
    println!(
        "`{right}`:  completed={} result={:?} semantic={:#018x} ({} events)",
        rr.completed,
        rr.result,
        rr.trace.semantic,
        re.len()
    );
    let verdicts_agree = lr.completed == rr.completed && lr.result == rr.result;
    match first_divergence(&le, &re) {
        None => println!("traces identical"),
        Some(d) => println!("{d}"),
    }
    Some(if verdicts_agree {
        ExitCode::SUCCESS
    } else {
        println!("BACKENDS DISAGREE on verdict/value");
        ExitCode::FAILURE
    })
}

fn cmd_shrink(args: &Args) -> Option<ExitCode> {
    let (plan, default_procs) = match args.get("archived") {
        Some(name) => {
            let Some(found) = archived_plan(name) else {
                eprintln!("unknown archived plan `{name}`");
                return Some(ExitCode::FAILURE);
            };
            found
        }
        None => (parse_plan(args.get("plan")?)?, 4),
    };
    let workload = parse_workload(args.get("workload")?)?;
    let backend = match args.get("backend") {
        Some(b) => Backend::parse(b)?,
        None => Backend::Des,
    };
    let mut cfg = MachineConfig::new(args.num("procs", u64::from(default_procs))? as u32);
    cfg.policy = splice_gradient::Policy::RoundRobin;
    cfg.recovery.load_beacon_period = 0;
    cfg.threads = args.num("threads", 2)? as u32;
    // The oracle: "failing" = the run does not complete. Shrinking keeps
    // the smallest sub-plan that still prevents completion.
    if execute(backend, cfg.clone(), &workload, &plan).0.completed {
        println!("plan is not failing on `{backend}` (run completes); nothing to shrink");
        return Some(ExitCode::FAILURE);
    }
    let mut oracle = |p: &FaultPlan| !execute(backend, cfg.clone(), &workload, p).0.completed;
    let report = shrink(&plan, &mut oracle);
    println!(
        "shrunk {} faults -> {} in {} probes",
        report.from_faults,
        report.plan.events.len(),
        report.probes
    );
    println!("minimal plan:\n{}", plan_literal(&report.plan));
    println!(
        "\n{}",
        regression_test_literal(
            "shrunken_reproducer_stays_failing",
            &format!(
                "shrunk from {} faults by splice-trace; run must not complete on `{backend}`",
                report.from_faults
            ),
            &report.plan
        )
    );
    Some(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(args) = Args::parse(rest) else {
        return usage();
    };
    let out = match cmd.as_str() {
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "diff" => cmd_diff(&args),
        "shrink" => cmd_shrink(&args),
        _ => return usage(),
    };
    out.unwrap_or_else(usage)
}
