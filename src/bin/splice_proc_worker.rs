//! `splice-proc-worker` — one shard of the multi-process machine.
//!
//! Not meant to be launched by hand: the coordinator (the `splice-proc`
//! binary or [`splice_sim::proc::run_process`]) spawns one worker per
//! shard with the run directory and shard index as arguments, then
//! configures it over the control socket. See `splice_sim::proc` for the
//! wire protocol.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (dir, shard) = match (args.get(1), args.get(2).and_then(|s| s.parse::<u32>().ok())) {
        (Some(dir), Some(shard)) => (dir.clone(), shard),
        _ => {
            eprintln!("usage: splice-proc-worker <run-dir> <shard-index>");
            return ExitCode::from(2);
        }
    };
    ExitCode::from(splice_sim::proc::worker_main(Path::new(&dir), shard) as u8)
}
