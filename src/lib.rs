//! `splice` — distributed recovery in applicative systems.
//!
//! A full reproduction of *Lin & Keller, "Distributed Recovery in
//! Applicative Systems", Proc. ICPP 1986*: functional checkpointing, level
//! stamps, rollback recovery, splice recovery, replicated tasks with
//! majority voting — running on a deterministic simulated multiprocessor
//! and on a real threaded runtime, over a reimplemented gradient-model
//! load balancer and a small strict applicative language.
//!
//! This umbrella crate re-exports the workspace so applications can depend
//! on one crate:
//!
//! * [`lang`] (= `splice-applicative`) — the language: programs, values,
//!   reference and wave evaluators, parser, workload library;
//! * [`core`] (= `splice-core`) — the recovery protocol itself;
//! * [`harness`] (= `splice-harness`) — the shared sans-IO driver layer:
//!   the `Substrate` trait both machines implement and the driver loop
//!   both machines pump;
//! * [`simnet`] (= `splice-simnet`) — the discrete-event substrate;
//! * [`gradient`] (= `splice-gradient`) — dynamic task allocation;
//! * [`sim`] (= `splice-sim`) — the simulated machine, the cooperative
//!   reactor machine (thousands of engines on one thread), and the
//!   experiments;
//! * [`runtime`] (= `splice-runtime`) — the threaded machine.
//!
//! # Quickstart
//!
//! ```
//! use splice::prelude::*;
//!
//! // fib(12) on 4 simulated processors; processor 2 crashes mid-run and
//! // splice recovery salvages the orphaned partial results.
//! let workload = Workload::fib(12);
//! let mut cfg = MachineConfig::new(4);
//! cfg.recovery.mode = RecoveryMode::Splice;
//! let report = run_workload(cfg, &workload, &FaultPlan::crash_at(2, VirtualTime(3_000)));
//! assert_eq!(report.result, Some(Value::Int(144)));
//! ```

pub use splice_applicative as lang;
pub use splice_core as core;
pub use splice_gradient as gradient;
pub use splice_harness as harness;
pub use splice_runtime as runtime;
pub use splice_sim as sim;
pub use splice_simnet as simnet;

/// The most common imports, flattened.
pub mod prelude {
    pub use splice_applicative::{eval_call, Budget, Expr, FnId, Program, Value, Workload};
    pub use splice_core::{
        CheckpointFilter, Config as RecoveryConfig, LevelStamp, ProcId, RecoveryMode, ReplicaSpec,
        VoteMode,
    };
    pub use splice_gradient::Policy;
    pub use splice_sim::{
        run_parallel_reactor, run_reactor, run_workload, CostModel, Machine, MachineConfig,
        ParallelReactorMachine, ReactorMachine, RunReport,
    };
    pub use splice_simnet::{
        DetectorConfig, FaultKind, FaultPlan, LinkModel, Topology, VirtualTime,
    };
}
