//! The same recovery protocol on real OS threads: crossbeam channels as
//! the interconnect, a heartbeat monitor as the failure detector, and a
//! fail-silent crash injected mid-run.
//!
//! ```sh
//! cargo run --release --example threaded_runtime
//! ```

use splice::prelude::*;
use splice::runtime::{run, CrashAt, RuntimeConfig};
use std::time::Duration;

fn main() {
    let workload = Workload::nqueens(6);
    let expected = workload.reference_result().unwrap();
    println!("workload: {} (reference answer {expected})", workload.name);

    let mut cfg = RuntimeConfig::new(4);
    cfg.recovery.mode = RecoveryMode::Splice;

    let clean = run(cfg.clone(), &workload, &[]);
    println!(
        "\n4 worker threads, no faults:  result={} in {:?} ({} tasks)",
        clean.result.as_ref().unwrap(),
        clean.elapsed,
        clean.stats.tasks_completed
    );

    let crashes = [CrashAt {
        victim: 2,
        after: Duration::from_millis(20),
    }];
    let r = run(cfg, &workload, &crashes);
    println!(
        "thread 2 killed at +20ms:     result={} in {:?} ({} detections, {} reissues, {} salvaged)",
        r.result.as_ref().unwrap(),
        r.elapsed,
        r.detections,
        r.stats.reissues,
        r.stats.salvaged_results
    );
    assert_eq!(r.result, Some(expected));
    println!("\nsame engine as the simulator, driven by real threads and real races.");
}
