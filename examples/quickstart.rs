//! Quickstart: write a functional program, run it on a simulated
//! applicative multiprocessor, crash a processor mid-run, and watch splice
//! recovery salvage the partial results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use splice::prelude::*;

const PROGRAM: &str = r#"
; parallel binomial coefficient: C(n,k) = C(n-1,k-1) + C(n-1,k)
(def choose (n k)
  (if (or (= k 0) (= k n)) 1
      (+ (choose (- n 1) (- k 1)) (choose (- n 1) k))))
"#;

fn main() {
    // 1. Parse the program and build a workload: choose(16, 8).
    let parsed = splice::lang::parser::parse(PROGRAM).expect("program parses");
    let entry = parsed.program.lookup("choose").unwrap();
    let workload = Workload {
        name: "choose(16,8)".into(),
        program: parsed.program,
        entry,
        args: vec![Value::Int(16), Value::Int(8)],
    };

    // 2. The reference answer, straight from the evaluator.
    let expected = eval_call(&workload.program, workload.entry, &workload.args).unwrap();
    println!("reference result:      {expected}");

    // 3. An 8-processor machine on a torus, gradient load balancing,
    //    splice recovery (all defaults except the topology).
    let mut cfg = MachineConfig::new(8);
    cfg.topology = Topology::Mesh {
        w: 4,
        h: 2,
        wrap: true,
    };
    cfg.recovery.mode = RecoveryMode::Splice;

    // 4. Fault-free run, to know how long the computation takes.
    let fault_free = run_workload(cfg.clone(), &workload, &FaultPlan::none());
    println!(
        "fault-free:            result={} finish={} tasks={}",
        fault_free.result.as_ref().unwrap(),
        fault_free.finish,
        fault_free.stats.tasks_completed
    );

    // 5. Crash processor 5 at 40% of the fault-free time.
    let crash = VirtualTime(fault_free.finish.ticks() * 2 / 5);
    let report = run_workload(cfg, &workload, &FaultPlan::crash_at(5, crash));
    println!(
        "with crash at {crash}: result={} finish={} (x{:.2} slowdown)",
        report.result.as_ref().unwrap(),
        report.finish,
        report.slowdown_vs(&fault_free)
    );
    println!(
        "recovery:              {} twins created, {} orphan results salvaged, {} reissues",
        report.stats.step_parents_created, report.stats.salvaged_results, report.stats.reissues
    );

    assert_eq!(report.result, Some(expected));
    println!("\nanswer survives the crash — determinacy at work (paper §2.1).");
}
