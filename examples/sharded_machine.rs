//! The sharded substrate: partition the machine into shards behind an
//! inter-shard router, kill one shard wholesale, and watch splice recovery
//! rebuild the lost subtrees *across* the partition boundary.
//!
//! ```sh
//! cargo run --release --example sharded_machine
//! ```

use splice::prelude::*;

fn main() {
    let workload = Workload::fib(13);
    let expected = workload.reference_result().unwrap();
    println!("reference result:       {expected}");

    // 4 shards × 4 processors; every message crossing a shard boundary
    // pays 400 extra ticks at the router. Round-robin placement spreads
    // the call tree over all shards, so shard 3 demonstrably holds live
    // work when it dies.
    let mut cfg = MachineConfig::sharded(4, 4, 400);
    cfg.policy = Policy::RoundRobin;

    // Fault-free baseline.
    let baseline = run_workload(cfg.clone(), &workload, &FaultPlan::none());
    println!(
        "fault-free:             finish={} intra={} inter={}",
        baseline.finish, baseline.shard_msgs_intra, baseline.shard_msgs_inter
    );

    // Now crash all of shard 3 (processors 12..16) mid-run.
    let crash = VirtualTime(baseline.finish.ticks() / 2);
    let report = run_workload(cfg, &workload, &FaultPlan::crash_shard(3, 4, crash));
    println!(
        "whole-shard crash:      finish={} intra={} inter={}",
        report.finish, report.shard_msgs_intra, report.shard_msgs_inter
    );
    println!(
        "recovery:               reissues={} salvaged={} root_reissues={}",
        report.stats.reissues, report.stats.salvaged_results, report.root_reissues
    );

    assert_eq!(report.result, Some(expected), "recovered the answer");
    assert!(report.shard_msgs_inter > 0, "recovery crossed the router");
    println!(
        "slowdown vs fault-free: {:.2}×",
        report.slowdown_vs(&baseline)
    );
}
