//! The cooperative reactor: thousands of protocol engines on one thread.
//!
//! No thread per processor, no event-queue latency model — a hand-rolled
//! reactor (ready queue + waker flags + timer wheels) pumps every engine
//! cooperatively. Same config, same fault plans, same report as the DES
//! machine; a third independent scheduler for the same recovery protocol.
//!
//! ```sh
//! cargo run --release --example reactor_machine
//! ```

use splice::prelude::*;
use splice::sim::reactor::run_reactor;
use std::time::Instant;

fn main() {
    let workload = Workload::fib(16);
    let expected = workload.reference_result().unwrap();
    println!("reference result:       {expected}");

    // 2048 engines on one thread — a processor count no thread-per-
    // processor backend could host. Round-robin placement spreads the
    // call tree across all of them; beacons stay off (they inform the
    // gradient placer, not round-robin).
    let mut cfg = MachineConfig::new(2_048);
    cfg.policy = Policy::RoundRobin;
    cfg.recovery.mode = RecoveryMode::Splice;
    cfg.recovery.load_beacon_period = 0;

    let t0 = Instant::now();
    let baseline = run_reactor(cfg.clone(), &workload, &FaultPlan::none());
    println!(
        "fault-free:             finish={} tasks={} wall={:.1}ms",
        baseline.finish,
        baseline.stats.tasks_completed,
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // Now crash 32 engines at once, mid-run, and let splice recovery
    // rebuild the lost subtrees.
    let crash = VirtualTime((baseline.finish.ticks() / 2).max(1));
    let mut faults = FaultPlan::none();
    for victim in (0..2_048).step_by(64) {
        faults = faults.and(victim, crash, FaultKind::Crash);
    }
    let t0 = Instant::now();
    let report = run_reactor(cfg, &workload, &faults);
    println!(
        "32-engine massacre:     finish={} tasks={} wall={:.1}ms",
        report.finish,
        report.stats.tasks_completed,
        t0.elapsed().as_secs_f64() * 1e3,
    );
    println!(
        "recovery:               reissues={} salvaged={} bounces={} root_reissues={}",
        report.stats.reissues, report.stats.salvaged_results, report.bounces, report.root_reissues
    );

    assert_eq!(report.result, Some(expected), "recovered the answer");
    println!(
        "slowdown vs fault-free: {:.2}×",
        report.slowdown_vs(&baseline)
    );
}
