//! §5.3 of the paper: emulated hardware redundancy. "The user may specify
//! certain critical sections of a program for such a highly reliable
//! operation" — here the mapper function runs as a replicated task group
//! with majority voting, masking a processor that emits corrupted results.
//!
//! ```sh
//! cargo run --release --example replicated_critical
//! ```

use splice::prelude::*;

fn main() {
    let workload = Workload::mapreduce(0, 16, 8);
    let expected = workload.reference_result().unwrap();
    // Replicate the splitter: each replica executes a whole subtree — the
    // paper's "critical sections of a program".
    let mapred = workload.program.lookup("mapred").unwrap();
    println!(
        "workload: {} (reference answer {expected}); processor 0 corrupts results\n",
        workload.name
    );

    // Processor 0 silently corrupts every replica result it emits.
    let faults = FaultPlan {
        events: vec![splice::simnet::fault::FaultEvent {
            at: VirtualTime(0),
            victim: 0,
            kind: FaultKind::Corrupt,
        }],
        root_events: Vec::new(),
    };

    for (label, n, vote) in [
        ("unprotected (n=1)           ", 1u32, VoteMode::Majority),
        ("triple redundancy, majority ", 3, VoteMode::Majority),
        ("triple redundancy, wait-all ", 3, VoteMode::WaitAll),
        ("five-way redundancy         ", 5, VoteMode::Majority),
    ] {
        let mut cfg = MachineConfig::new(8);
        cfg.policy = Policy::RoundRobin; // spread replicas everywhere
        cfg.recovery.mode = RecoveryMode::Splice;
        cfg.recovery
            .replicate
            .insert(mapred, ReplicaSpec { n, vote });
        let r = run_workload(cfg, &workload, &faults);
        let got = r.result.as_ref().unwrap();
        println!(
            "{label} result={got:<8} correct={:<5} finish={:<8} votes(ok/conflict)={}/{}",
            (got == &expected).to_string(),
            r.finish.ticks(),
            r.stats.votes_decided,
            r.stats.votes_conflicted,
        );
    }

    println!(
        "\nmajority voting masks the corrupt minority and — unlike wait-all —\n\
         does not wait for the slowest replica (the paper's asynchronous-\n\
         redundancy argument)."
    );
}
