//! The workload the paper's introduction motivates: aggregate many
//! processors on one functional program — here a map-reduce over an integer
//! range with a costly mapper — and keep the answer coming as processors
//! die.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_mapreduce
//! ```

use splice::prelude::*;

fn main() {
    // sum of fib(12) over 128 leaves, unfolded as a balanced splitter tree.
    let workload = Workload::mapreduce(0, 128, 12);
    let expected = workload.reference_result().unwrap();
    println!("workload: {}  (reference answer {expected})", workload.name);

    let mut cfg = MachineConfig::new(16);
    cfg.topology = Topology::Hypercube { dim: 4 };
    cfg.policy = Policy::Gradient;
    cfg.recovery.mode = RecoveryMode::Splice;

    let fault_free = run_workload(cfg.clone(), &workload, &FaultPlan::none());
    println!(
        "\n16 processors, hypercube, gradient placement, no faults:\n  finish={} tasks={} imbalance={:.2}",
        fault_free.finish,
        fault_free.stats.tasks_completed,
        fault_free.work_imbalance()
    );

    // Kill three processors at staggered instants.
    let t = fault_free.finish.ticks();
    let faults = FaultPlan::crash_at(3, VirtualTime(t / 5))
        .and(9, VirtualTime(t * 2 / 5), FaultKind::Crash)
        .and(14, VirtualTime(t * 3 / 5), FaultKind::Crash);

    for (label, mode) in [
        ("rollback", RecoveryMode::Rollback),
        ("splice  ", RecoveryMode::Splice),
    ] {
        let mut c = cfg.clone();
        c.recovery.mode = mode;
        let r = run_workload(c, &workload, &faults);
        assert_eq!(r.result, Some(expected.clone()), "{label}");
        println!(
            "\n{label} under 3 staggered crashes:\n  finish={} (x{:.2}) reissues={} salvaged={} suicides={} redundant-work={:+.1}%",
            r.finish,
            r.slowdown_vs(&fault_free),
            r.stats.reissues,
            r.stats.salvaged_results,
            r.stats.orphans_suicided,
            r.redundant_work_vs(&fault_free) * 100.0
        );
    }

    println!("\nthe answer is identical in every run — the paper's determinacy argument.");
}
