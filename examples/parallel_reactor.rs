//! The multi-core reactor: 65,536 protocol engines across every core.
//!
//! One reactor pump per core, each owning a partition of the engines;
//! cross-partition sends travel over per-pair envelope links, and a
//! virtual-clock barrier keeps the run deterministic for a fixed pump
//! count. Mid-run, 16k engines — every other engine of pump 0's block — are
//! massacred with the failure detector disabled: nobody is told, the
//! survivors discover the deaths the hard way — bounced sends, and
//! ack-timeout liveness probes for children that were already placed —
//! and splice recovery rebuilds the lost subtrees. Work stealing then
//! drains the overloaded survivors toward the idle pump.
//!
//! ```sh
//! cargo run --release --example parallel_reactor
//! ```
//!
//! Wall-clock speedup across pumps is a property of the host: on a
//! single-core container the extra pumps only add barrier overhead, and
//! the printed times say so honestly.

use splice::prelude::*;
use splice::sim::run_parallel_reactor;
use std::time::Instant;

fn main() {
    let workload = Workload::fib(16);
    let expected = workload.reference_result().unwrap();
    let n: u32 = 65_536;
    // One pump per core (minimum two, so the cross-reactor machinery is
    // exercised even on a single-core host).
    let threads = std::thread::available_parallelism()
        .map_or(2, |p| p.get() as u32)
        .max(2);
    println!("engines: {n}, pumps: {threads}");
    println!("reference result:        {expected}");

    let mut cfg = MachineConfig::new(n);
    cfg.threads = threads;
    cfg.policy = Policy::RoundRobin;
    cfg.recovery.mode = RecoveryMode::Splice;
    cfg.recovery.load_beacon_period = 0;
    // Fail-silent: no death broadcasts. With 32k victims a broadcast
    // detector would be 2 billion notices; instead every survivor learns
    // of a death the hard way, from its own bounced send.
    cfg.detector.broadcast = false;

    let t0 = Instant::now();
    let baseline = run_parallel_reactor(cfg.clone(), &workload, &FaultPlan::none());
    println!(
        "fault-free:              finish={} tasks={} cross={} wall={:.1}ms",
        baseline.finish,
        baseline.stats.tasks_completed,
        baseline.msgs_cross_reactor,
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // Massacre 16k engines mid-run: every odd-numbered engine of pump 0's
    // partition. Round-robin placement concentrates the call tree on low
    // ids, so these victims hold live work — their even-numbered
    // neighbours keep checkpoints of the lost subtrees and splice them
    // back together, while stealing rebalances the survivors' pile-up
    // toward the other pumps.
    let crash = VirtualTime((baseline.finish.ticks() / 2).max(1));
    let mut faults = FaultPlan::none();
    for victim in (1..n / threads).step_by(2) {
        faults = faults.and(victim, crash, FaultKind::Crash);
    }
    let t0 = Instant::now();
    let report = run_parallel_reactor(cfg, &workload, &faults);
    println!(
        "16k-engine massacre:     finish={} tasks={} cross={} wall={:.1}ms",
        report.finish,
        report.stats.tasks_completed,
        report.msgs_cross_reactor,
        t0.elapsed().as_secs_f64() * 1e3,
    );
    println!(
        "recovery:                reissues={} salvaged={} bounces={} steals={}",
        report.stats.reissues, report.stats.salvaged_results, report.bounces, report.steals,
    );

    // The virtual finish is dominated by the ack-timeout probe that first
    // discovers the silent deaths, so a virtual-time slowdown ratio would
    // only restate the timeout; the wall times above are the honest cost.
    assert_eq!(report.result, Some(expected), "recovered the answer");
    println!("recovered:               the reference answer, via probes and bounces alone");
}
