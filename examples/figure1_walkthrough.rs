//! A guided walk through the paper's Figure 1: the call tree mapped onto
//! processors A–D, the failure of B, the three fragments, and both recovery
//! algorithms side by side.
//!
//! ```sh
//! cargo run --release --example figure1_walkthrough
//! ```

use splice::core::{CheckpointFilter, RecoveryMode};
use splice::sim::figure1;

fn main() {
    println!("Figure 1 — call tree mapped onto processors A, B, C, D");
    println!("========================================================\n");
    for (name, stamp, proc) in figure1::stamps() {
        println!("  task {name:<4} stamp {stamp:<16} on {proc}");
    }

    let crash = figure1::crash_instant();
    println!("\nprocessor B fails at {crash} (B5 just placed; B1, B2, B3, B7 in flight)");
    println!("fragments: {{A1,C1,C2,C3,D3}}  {{A2,D1,D2,C4}}  {{D4,D5,A5}}\n");

    for (label, mode, filter) in [
        (
            "rollback + topmost rule (§3)",
            RecoveryMode::Rollback,
            CheckpointFilter::Topmost,
        ),
        (
            "rollback, reissue-all ablation",
            RecoveryMode::Rollback,
            CheckpointFilter::All,
        ),
        (
            "splice recovery (§4)",
            RecoveryMode::Splice,
            CheckpointFilter::Topmost,
        ),
    ] {
        let out = figure1::run(mode, filter);
        let s = &out.report.stats;
        println!("{label}");
        println!(
            "  completed={} correct={} finish={}",
            out.report.completed,
            out.correct(),
            out.report.finish
        );
        println!(
            "  reissues={} step-parents={} salvaged={} suicides={} aborted={} tasks created={}",
            s.reissues,
            s.step_parents_created,
            s.salvaged_results,
            s.orphans_suicided,
            s.tasks_aborted,
            s.tasks_created
        );
        match (mode, filter) {
            (RecoveryMode::Rollback, CheckpointFilter::Topmost) => println!(
                "  -> A respawns B1; C respawns B2 and B3; D respawns B7. B5 is skipped:\n     its checkpoint stamp descends from B2's in C's entry for B (the paper's\n     'redo only the most ancient ancestor' rule).\n"
            ),
            (RecoveryMode::Rollback, CheckpointFilter::All) => println!(
                "  -> without the topmost rule B5 is reissued too — 'reactivation of B5\n     only increases the system overhead'.\n"
            ),
            _ => println!(
                "  -> orphan fragments keep computing; D4's and A2's results return via\n     grandparent C1 and are spliced into twin B2'.\n"
            ),
        }
    }
}
